"""Functional rollback equivalence.

This is the core correctness property of the whole reproduction: rolling
back via the interval logs — with ACR's omitted values *recomputed* from
their Slices and operand snapshots, never read from anywhere — must
restore memory to the exact state captured at the safe checkpoint.

A miniature checkpointing harness drives the real components (interpreter,
compiler pass, AddrMap handler, checkpoint store, recovery engine) and
snapshots memory at every checkpoint for comparison.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.acr.handlers import AcrCheckpointHandler
from repro.arch.config import MachineConfig
from repro.arch.directory import Directory
from repro.arch.memctrl import MemorySystem
from repro.ckpt.checkpoint import CheckpointStore
from repro.ckpt.recovery import RecoveryEngine
from repro.compiler.embed import compile_program
from repro.compiler.policy import ThresholdPolicy
from repro.energy.model import EnergyModel
from repro.isa.builder import chain_kernel
from repro.isa.instructions import AddressPattern
from repro.isa.interpreter import Interpreter, MemoryImage
from repro.isa.program import Program


class MiniCkptHarness:
    """Drives real components through checkpoint intervals."""

    def __init__(self, acr: bool, threshold: int = 10, threads: int = 2):
        self.config = MachineConfig(num_cores=threads)
        kernels_per_thread = []
        for t in range(threads):
            base = (t + 1) << 24
            kernels = []
            for rep in range(9):
                kernels.append(
                    chain_kernel(
                        f"chain.r{rep}",
                        AddressPattern(base, 1, 32),
                        [AddressPattern(base + (1 << 20), 1, 32, offset=rep)],
                        chain_depth=4,
                        trip_count=32,
                        salt=t * 31 + rep,
                    )
                )
                kernels.append(
                    chain_kernel(
                        f"copy.r{rep}",
                        AddressPattern(base + (1 << 16), 1, 16),
                        [AddressPattern(base + (1 << 21), 1, 16, offset=rep)],
                        0,
                        16,
                        copy_store=True,
                    )
                )
            kernels_per_thread.append(kernels)

        programs = [Program(ks, t) for t, ks in enumerate(kernels_per_thread)]
        if acr:
            compiled = [
                compile_program(p, ThresholdPolicy(threshold)) for p in programs
            ]
            self.programs = [c.program for c in compiled]
            self.handler = AcrCheckpointHandler(
                self.config, [c.slices for c in compiled]
            )
        else:
            self.programs = programs
            self.handler = None

        self.memory = MemoryImage(seed=5)
        self.directory = Directory(threads)
        self.store = CheckpointStore(self.config.arch_state_bytes, threads)
        self.engine = RecoveryEngine(
            self.config, MemorySystem(self.config), EnergyModel()
        )
        self.interpreters = [
            Interpreter(p, self.memory, on_store=self._on_store)
            for p in self.programs
        ]
        self.snapshots: List[Dict[int, int]] = []

    def _on_store(self, ev) -> None:
        if not self.directory.test_and_set_log(ev.address):
            entry = (
                self.handler.may_omit(ev.thread, ev.address)
                if self.handler
                else None
            )
            if entry is not None:
                self.store.current_log.add_omitted(
                    ev.address, entry, ev.thread, ev.old_value
                )
            else:
                self.store.current_log.add_record(
                    ev.address, ev.old_value, ev.thread
                )
        if self.handler:
            self.handler.on_store(ev.thread, ev.site, ev.address, ev.regs)

    def run_kernels(self, count: int) -> None:
        """Every thread executes exactly ``count`` kernels."""
        for it in self.interpreters:
            for _ in range(count):
                if it.done:
                    break
                kernel_index, iteration = it.position
                remaining = (
                    it.program.kernels[kernel_index].trip_count - iteration
                )
                it.step_iterations(remaining)

    def checkpoint(self) -> None:
        self.snapshots.append(self.memory.snapshot())
        self.store.establish(float(self.store.count + 1), float(self.store.count + 1))
        self.directory.clear_log_bits()
        if self.handler:
            self.handler.on_checkpoint()

    def rollback_to(self, safe_index: int) -> None:
        logs = self.store.logs_to_rollback(safe_index)
        self.engine.apply_rollback(self.memory, logs)


@pytest.mark.parametrize("acr", [False, True], ids=["baseline", "acr"])
class TestRollbackEquivalence:
    def test_rollback_to_most_recent(self, acr):
        h = MiniCkptHarness(acr)
        for _ in range(3):
            h.run_kernels(4)
            h.checkpoint()
        h.run_kernels(3)  # partial interval
        h.rollback_to(safe_index=2)
        assert h.memory.snapshot() == h.snapshots[2]

    def test_rollback_two_back_fig2(self, acr):
        h = MiniCkptHarness(acr)
        for _ in range(4):
            h.run_kernels(4)
            h.checkpoint()
        h.run_kernels(2)
        # Fig. 2: the most recent checkpoint (index 3) is suspect.
        h.rollback_to(safe_index=2)
        assert h.memory.snapshot() == h.snapshots[2]

    def test_rollback_at_exact_boundary(self, acr):
        h = MiniCkptHarness(acr)
        for _ in range(3):
            h.run_kernels(4)
            h.checkpoint()
        # No partial work: roll back across one full interval.
        h.rollback_to(safe_index=1)
        assert h.memory.snapshot() == h.snapshots[1]

    def test_replay_after_rollback_reconverges(self, acr):
        """Deterministic re-execution from the restored state reproduces
        the original final memory (the property the simulator exploits to
        avoid functional re-execution)."""
        ref = MiniCkptHarness(acr)
        for _ in range(3):
            ref.run_kernels(6)
        final = ref.memory.snapshot()

        h = MiniCkptHarness(acr)
        h.run_kernels(6)
        h.checkpoint()
        h.run_kernels(4)
        positions = [it.position for it in h.interpreters]
        h.rollback_to(safe_index=0)
        assert h.memory.snapshot() == h.snapshots[0]
        # "Replay": rewind interpreters by rebuilding them at the ckpt
        # position. Interpreters cannot rewind, so rebuild from scratch
        # and fast-forward to the checkpoint position, then run all.
        h2 = MiniCkptHarness(acr)
        h2.memory.restore(h.memory.snapshot())
        for it in h2.interpreters:
            while not it.done and it.position < (6, 0):
                it.step_iterations(10_000)
        for it in h2.interpreters:
            while not it.done:
                it.step_iterations(10_000)
        assert h2.memory.snapshot() == final


class TestAcrActuallyOmits:
    def test_omissions_present_and_verified(self):
        h = MiniCkptHarness(acr=True)
        for _ in range(3):
            h.run_kernels(4)
            h.checkpoint()
        h.run_kernels(2)
        logs = h.store.logs_to_rollback(1)
        omitted = sum(len(l.omitted) for l in logs)
        assert omitted > 0
        assert RecoveryEngine.verify_recomputation(logs) == []

    def test_acr_logs_fewer_records_than_baseline(self):
        hb = MiniCkptHarness(acr=False)
        ha = MiniCkptHarness(acr=True)
        for h in (hb, ha):
            for _ in range(3):
                h.run_kernels(4)
                h.checkpoint()
        base_records = sum(c.data_bytes for c in hb.store.checkpoints)
        acr_records = sum(c.data_bytes for c in ha.store.checkpoints)
        assert acr_records < base_records
        # ... but identical baseline-equivalent content.
        assert sum(
            c.data_bytes + c.omitted_bytes for c in ha.store.checkpoints
        ) == base_records
