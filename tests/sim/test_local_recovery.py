"""Local-scheme recovery semantics: only the communicating cluster pays.

Under coordinated local checkpointing, recovery is confined to the
erroneous core's communication cluster — other cores neither roll back
nor wait (paper §V-E: "they don't need to roll back farther ... to match
a global recovery line").
"""

import pytest

from repro.errors.injection import UniformErrors
from repro.sim.simulator import SimulationOptions, Simulator
from repro.workloads.spec import SliceLenBucket, WorkloadSpec

from tests.conftest import tiny_machine


@pytest.fixture(scope="module")
def clustered_runs():
    """4 cores in 2 clusters of 2; one mid-run error striking core 0."""
    spec = WorkloadSpec(
        name="pairs",
        region_words=64,
        reps=24,
        sites=8,
        ghost_alu=10,
        len_mix=(SliceLenBucket(0.8, 2, 8),),
        copy_frac=0.05,
        accum_frac=0.05,
        cluster_size=2,
        seed=7,
    )
    programs = spec.build_programs(4)
    sim = Simulator(programs, tiny_machine(4))
    base = sim.run_baseline()
    local = sim.run(
        SimulationOptions(
            label="loc",
            scheme="local",
            num_checkpoints=6,
            baseline=base.baseline_profile(),
            errors=UniformErrors(1),
        )
    )
    glob = sim.run(
        SimulationOptions(
            label="glob",
            scheme="global",
            num_checkpoints=6,
            baseline=base.baseline_profile(),
            errors=UniformErrors(1),
        )
    )
    return base, local, glob


class TestLocalRecovery:
    def test_clusters_observed(self, clustered_runs):
        _, local, _ = clustered_runs
        # Two pairs of communicating cores.
        assert all(iv.clusters == 2 for iv in local.intervals)

    def test_recovery_confined_to_cluster(self, clustered_runs):
        _, local, glob = clustered_runs
        assert local.recoveries[0].participants == 2
        assert glob.recoveries[0].participants == 4

    def test_non_participants_pay_less_overhead(self, clustered_runs):
        _, local, _ = clustered_runs
        # Error 0 strikes core 0 -> cluster {0, 1} pays the recovery;
        # cores 2 and 3 only pay checkpointing.
        inside = max(local.per_core_overhead_ns[0:2])
        outside = max(local.per_core_overhead_ns[2:4])
        assert outside < inside

    def test_local_restores_fewer_records(self, clustered_runs):
        _, local, glob = clustered_runs
        assert (
            local.recoveries[0].restored_records
            < glob.recoveries[0].restored_records
        )

    def test_local_recovery_cheaper_overall(self, clustered_runs):
        _, local, glob = clustered_runs
        assert local.recovery_time_ns < glob.recovery_time_ns
