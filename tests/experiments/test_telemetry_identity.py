"""Telemetry must be advisory: pinned bit-identity + zero-frame tests.

The whole observability layer rides on one invariant — attaching (or
detaching) telemetry can never change a scientific result.  These tests
pin it from both directions: identical ``to_dict`` payloads with and
without a live aggregator, and exactly zero frames when nothing is
attached (the ambient ``emit`` is a true no-op, not a buffered one).
"""

import json

from repro.experiments.configs import ConfigRequest
from repro.experiments.runner import ExperimentRunner
from repro.inject.harness import TrialSpec, run_trial
from repro.obs.telemetry.aggregate import CampaignTelemetry
from repro.obs.telemetry.emit import task_telemetry, telemetry_active


def _runner(**kw):
    kw.setdefault("num_cores", 2)
    kw.setdefault("region_scale", 0.05)
    kw.setdefault("reps", 2)
    return ExperimentRunner(**kw)


def _spec():
    return TrialSpec(
        workload="cg", config="ACR", seed=3, num_cores=2,
        steps_per_interval=2, iters_per_step=4, region_scale=0.05, reps=2,
    )


def _canon(result):
    return json.dumps(result.to_dict(), sort_keys=True)


class TestRunnerIdentity:
    def test_run_results_identical_with_and_without_telemetry(self):
        request = ConfigRequest("ReCkpt_E", error_count=2)
        plain = _runner().run("cg", request)

        telemetry = CampaignTelemetry()
        streamed_runner = _runner(telemetry=telemetry)
        streamed = streamed_runner.run("cg", request)

        assert _canon(plain) == _canon(streamed)
        # The streamed run really did stream (this is not a vacuous
        # comparison between two silent runs).
        assert telemetry.frames > 0
        # The request plus its baseline-profile prerequisite both ran.
        assert telemetry.tasks_finished >= 1
        assert telemetry.active == {}

    def test_detached_runner_emits_zero_frames(self):
        # A live aggregator exists but is NOT attached to the runner:
        # ambient emission must stay a no-op for the whole run.
        bystander = CampaignTelemetry()
        assert telemetry_active() is False
        _runner().run("cg", ConfigRequest("Ckpt_E", error_count=1))
        assert telemetry_active() is False
        assert bystander.frames == 0
        assert bystander.tasks_started == 0


class TestInjectTrialIdentity:
    def test_trial_identical_with_and_without_telemetry(self):
        plain = run_trial(_spec())

        frames = []
        with task_telemetry("cg/inject:ACR", frames.append):
            streamed = run_trial(_spec())

        assert _canon(plain) == _canon(streamed)
        # The instrumented pass emitted heartbeats from inside the
        # mechanism loop (lifecycle frames aside).
        names = [type(f).__name__ for f in frames]
        assert "TaskStarted" in names
        assert "TaskFinished" in names
        assert names.count("TaskHeartbeat") >= 1

    def test_trial_emits_nothing_when_disabled(self):
        frames = []
        with task_telemetry("probe", frames.append):
            pass
        baseline = len(frames)  # lifecycle only
        run_trial(_spec())  # no ambient sink: must not leak frames
        assert len(frames) == baseline
