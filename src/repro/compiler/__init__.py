"""The ACR compiler pass.

The paper extracts, per store instruction, a *backward slice* restricted to
arithmetic/logic instructions (loads at the frontier become buffered input
operands; branches are unrolled away), keeps slices shorter than a length
threshold, embeds them into the binary, and pairs each covered store with
an ``ASSOC-ADDR`` instruction.

This package implements that pipeline over the IR:

``ddg``      — per-kernel def-use graph;
``slicer``   — backward slice extraction with sliceability analysis;
``slices``   — executable :class:`Slice` objects and the embedded table;
``policy``   — which slices to embed (greedy threshold, cost model);
``embed``    — rewrite the program with ``ASSOC-ADDR`` annotations;
``costmodel``— recomputation-vs-load cost estimation.
"""

from repro.compiler.ddg import DataDependenceGraph
from repro.compiler.slices import Slice, SliceTable
from repro.compiler.slicer import SliceExtraction, SliceRejection, extract_slice
from repro.compiler.policy import (
    CostModelPolicy,
    SelectionPolicy,
    ThresholdPolicy,
)
from repro.compiler.embed import CompiledProgram, CompileStats, compile_program
from repro.compiler.costmodel import RecomputeCostModel

__all__ = [
    "DataDependenceGraph",
    "Slice",
    "SliceTable",
    "SliceExtraction",
    "SliceRejection",
    "extract_slice",
    "SelectionPolicy",
    "ThresholdPolicy",
    "CostModelPolicy",
    "CompiledProgram",
    "CompileStats",
    "compile_program",
    "RecomputeCostModel",
]
