"""The experiment engine: memoised, disk-cached, parallel simulation runs.

Every figure/table generator needs the same small set of runs (e.g. the
Fig. 6/7/8 trio shares the NoCkpt/Ckpt/ReCkpt runs per benchmark); the
runner builds each workload's programs once and resolves every
(workload, :class:`ConfigRequest`) pair through three layers, cheapest
first:

1. the **in-process memo** — each distinct simulation costs one process
   exactly once;
2. the **persistent cache** (``cache_dir``) — serialised results keyed by
   a content hash of everything that determines the run, so repeated
   full-paper regenerations across invocations cost almost nothing;
3. the **simulator** — either inline, or fanned out over a supervised
   worker pool (``jobs > 1``; :mod:`repro.resilience`) for independent
   pairs via :meth:`ExperimentRunner.run_many` — with per-task
   timeouts, retries with deterministic backoff, dead-worker respawn
   and a write-ahead completion journal for ``resume``.

Parallel runs are bit-identical to serial ones: the simulation is
deterministic, workers return the full serialised result, and both paths
share the same cache keys (a test pins this).

Scale knobs: ``region_scale``/``reps`` shrink the workloads uniformly —
overheads and reductions are ratios, so they are stable across scales
(tests pin this).  The benchmark harness uses a moderate default scale to
keep a full paper regeneration to minutes.
"""

from __future__ import annotations

from contextlib import nullcontext
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.arch.config import MachineConfig
from repro.experiments.cache import (
    KIND_RUN,
    KIND_TRIAL,
    ResultCache,
    run_cache_key,
    trial_cache_key,
)
from repro.experiments.configs import ConfigRequest, make_options
from repro.experiments.progress import ProgressTracker, _Timer
from repro.inject.harness import TrialResult, TrialSpec, run_trial
from repro.isa.program import Program
from repro.obs.events import MACHINE, CampaignResumed
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry.emit import task_telemetry
from repro.obs.tracer import Tracer
from repro.resilience.journal import CompletionJournal, JournalRecord
from repro.resilience.locks import KeyLock
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.report import FailureReport
from repro.resilience.supervisor import SupervisedTask, Supervisor
from repro.sim.results import (
    BaselineProfile,
    RunResult,
    energy_overhead,
    time_overhead,
)
from repro.sim.snapshot import SnapshotStore
from repro.sim.simulator import Simulator
from repro.util.validation import check_positive
from repro.workloads.registry import all_workload_names, get_workload

__all__ = ["ExperimentRunner"]

#: One unit of pool work: everything a worker needs to rebuild the
#: simulator and execute the run, plus the baseline profile (None for
#: NoCkpt runs — they *are* the profile) and the execution engine.
_WorkerTask = Tuple[
    str,
    ConfigRequest,
    MachineConfig,
    float,
    Optional[int],
    Optional[List[float]],
    str,
]

#: Per-worker-process simulator memo, keyed by the full build recipe.
#: Lives at module scope so one pool worker serving several requests of
#: the same workload builds its programs once.
_WORKER_SIMULATORS: Dict[Tuple, Simulator] = {}


def _worker_simulator(
    workload: str,
    machine: MachineConfig,
    region_scale: float,
    reps: Optional[int],
) -> Simulator:
    """Build (or reuse) this worker process's simulator for a workload."""
    key = (workload, machine, region_scale, reps)
    sim = _WORKER_SIMULATORS.get(key)
    if sim is None:
        spec = get_workload(workload)
        programs = spec.build_programs(
            machine.num_cores, region_scale=region_scale, reps=reps
        )
        sim = Simulator(programs, machine)
        _WORKER_SIMULATORS[key] = sim
    return sim


def _trial_execute(
    task: Tuple[TrialSpec, str, bool, Optional[str]]
) -> Tuple[TrialSpec, dict, float]:
    """Pool entry point for fault-injection trials.

    A trial is self-contained (the spec names its workload, scale and
    machine shape), so the task is the spec plus the execution-plan
    knobs: the engine, whether to run on the forked-snapshot plan, and
    the snapshot store directory (None: in-process golden memo only —
    the harness keeps it at module scope, so one pool worker serving
    many trials of a recipe runs its golden pass once either way).
    Like :func:`_worker_execute` the result crosses the process boundary
    serialised.
    """
    spec, engine, snapshots, snapshot_dir = task
    store = (
        SnapshotStore(Path(snapshot_dir)) if snapshot_dir is not None
        else None
    )
    with _Timer() as timer:
        result = run_trial(
            spec, engine=engine, snapshots=snapshots, snapshot_store=store
        )
    return spec, result.to_dict(), timer.seconds


def _worker_execute(task: _WorkerTask) -> Tuple[str, ConfigRequest, dict, float]:
    """Pool entry point: run one configuration, return its serialised
    result (dicts, not ``RunResult`` — the checkpoint store never crosses
    the process boundary, and JSON-safe payloads keep pickling cheap)."""
    workload, request, machine, region_scale, reps, baseline_cores, engine = task
    with _Timer() as timer:
        sim = _worker_simulator(workload, machine, region_scale, reps)
        baseline = (
            BaselineProfile(list(baseline_cores))
            if baseline_cores is not None
            else None
        )
        result = sim.run(make_options(request, baseline, engine=engine))
    return workload, request, result.to_dict(), timer.seconds


class ExperimentRunner:
    """Runs (workload, configuration) pairs with layered caching."""

    def __init__(
        self,
        num_cores: int = 8,
        region_scale: float = 1.0,
        reps: Optional[int] = None,
        machine: Optional[MachineConfig] = None,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        progress: Optional[ProgressTracker] = None,
        resilience: Optional[ResiliencePolicy] = None,
        journal_path: Optional[Union[str, Path]] = None,
        resume: bool = False,
        engine: str = "interp",
        telemetry=None,
        snapshots: bool = True,
        snapshot_dir: Optional[Union[str, Path]] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        check_positive("num_cores", num_cores)
        check_positive("region_scale", region_scale)
        check_positive("jobs", jobs)
        self.num_cores = num_cores
        self.region_scale = region_scale
        self.reps = reps
        # The execution engine is intentionally absent from cache keys:
        # engines are bit-identical (the equivalence suite pins it), so a
        # cached result is valid regardless of which engine produced it.
        self.engine = engine
        self.machine = machine or MachineConfig(num_cores=num_cores)
        if self.machine.num_cores != num_cores:
            raise ValueError("machine config core count mismatch")
        self.jobs = jobs
        # Fault-injection execution plan: fork each trial's faulty pass
        # from the shared golden run's boundary snapshots (O(T + N·tail)
        # per recipe) instead of replaying from step 0 (O(N·T)).  Like
        # ``engine`` this is bit-identity-neutral (the fork-equivalence
        # suite pins it) and absent from cache keys; ``snapshot_dir``
        # optionally persists golden runs across invocations.
        self.snapshots = snapshots
        self.snapshot_dir: Optional[Path] = (
            Path(snapshot_dir) if snapshot_dir is not None else None
        )
        self.snapshot_store: Optional[SnapshotStore] = (
            SnapshotStore(self.snapshot_dir)
            if self.snapshot_dir is not None
            else None
        )
        self.progress = progress if progress is not None else ProgressTracker()
        # A caller-provided cache object (e.g. the campaign service's
        # replicated store) wins over ``cache_dir``; the caller then owns
        # its quarantine/metrics wiring.  A cache built here reports its
        # quarantines through this runner's progress + metrics.
        self.cache: Optional[ResultCache] = cache
        if self.cache is None and cache_dir is not None:
            self.cache = ResultCache(
                cache_dir,
                on_quarantine=lambda _p: self.progress.record_quarantine(),
            )
        #: Optional CampaignTelemetry: live frame streaming + snapshots.
        #: None (the default) keeps every execution path frame-free and
        #: byte-identical (pinned by test and benchmark guardrail).
        self.telemetry = telemetry
        # -- supervised execution (repro.resilience) -----------------------
        self.resilience = resilience or ResiliencePolicy()
        self.resilience_metrics = MetricsRegistry()
        if cache is None and self.cache is not None:
            self.cache.metrics = self.resilience_metrics
        #: Optional Tracer receiving harness-level events (task_retried,
        #: worker_died, pool_degraded, campaign_resumed).
        self.resilience_tracer: Optional[Tracer] = None
        #: Attempt histories of the most recent supervised fan-out.
        self.last_failure_report: Optional[FailureReport] = None
        #: Test/ops hooks forwarded to the Supervisor (see its docs).
        self.supervisor_hooks: Dict[str, Callable] = {}
        self._active_supervisor: Optional[Supervisor] = None
        # The write-ahead completion journal lives beside the cache by
        # default; an explicit path works cache-less (accounting only).
        if journal_path is None and self.cache is not None:
            journal_path = self.cache.journal_path()
        self.journal: Optional[CompletionJournal] = (
            CompletionJournal(journal_path) if journal_path is not None
            else None
        )
        self.resume = resume
        self._resume_keys: Dict[str, JournalRecord] = {}
        self._resume_credited: set = set()
        if resume:
            if self.journal is None:
                raise ValueError(
                    "resume=True needs a completion journal — configure "
                    "cache_dir (or journal_path)"
                )
            self._resume_keys = self.journal.load()
        #: Key locks currently held by this process (best-effort cache
        #: coordination); heartbeaten per completed task so long-running
        #: owners are not broken as stale by waiting peers.
        self._held_locks: List[KeyLock] = []
        self._programs: Dict[str, List[Program]] = {}
        self._simulators: Dict[str, Simulator] = {}
        self._results: Dict[Tuple[str, ConfigRequest], RunResult] = {}
        self._trial_results: Dict[TrialSpec, TrialResult] = {}

    # -- infrastructure ------------------------------------------------------
    def simulator(self, workload: str) -> Simulator:
        """The (cached) simulator for a workload."""
        if workload not in self._simulators:
            spec = get_workload(workload)
            programs = spec.build_programs(
                self.num_cores,
                region_scale=self.region_scale,
                reps=self.reps,
            )
            self._programs[workload] = programs
            self._simulators[workload] = Simulator(programs, self.machine)
        return self._simulators[workload]

    def default_threshold(self, workload: str) -> int:
        """The paper's per-benchmark slice threshold (10; 5 for ``is``)."""
        return get_workload(workload).default_threshold

    def cache_key(self, workload: str, request: ConfigRequest) -> str:
        """The persistent-cache key of one run (requires a cache to be
        meaningful, but computable without one)."""
        return run_cache_key(
            workload, request, self.machine, self.region_scale, self.reps
        )

    # -- runs ---------------------------------------------------------------
    def run(self, workload: str, request: ConfigRequest) -> RunResult:
        """Run (or fetch) one configuration of one workload."""
        found = self._lookup(workload, request)
        if found is not None:
            return found
        return self._simulate(workload, request)

    def run_many(
        self,
        pairs: Iterable[Tuple[str, ConfigRequest]],
        jobs: Optional[int] = None,
    ) -> List[RunResult]:
        """Resolve many (workload, request) pairs, fanning independent
        simulations out over a process pool when ``jobs > 1``.

        Results are returned in input order and are identical to what the
        serial :meth:`run` path produces (workers ship serialised results
        back; the checkpoint store stays worker-side).  Pairs already in
        the memo or the persistent cache are never re-simulated.

        With ``jobs > 1`` the fan-out runs under a
        :class:`~repro.resilience.supervisor.Supervisor`: hung tasks
        time out, dead workers respawn and their tasks retry with
        deterministic backoff, and repeated pool failures degrade to
        serial execution — none of which changes the results (tasks are
        deterministic; chaos tests pin bit-exactness).  Completed
        results are installed (and journaled) as they arrive, so a
        ``KeyboardInterrupt`` loses only in-flight work.
        """
        ordered = list(dict.fromkeys(pairs))
        jobs = self.jobs if jobs is None else jobs
        check_positive("jobs", jobs)

        pending = [
            (wl, req)
            for wl, req in ordered
            if self._lookup(wl, req) is None
        ]
        if self.resume:
            self._credit_resume(
                (self.cache_key(wl, req) for wl, req in ordered),
                pending_count=len(pending),
            )
        if pending:
            if jobs <= 1:
                for wl, req in pending:
                    self._simulate(wl, req)
            else:
                self._run_parallel(pending, jobs)
        return [self._results[(wl, req)] for wl, req in ordered]

    # -- fault-injection trials ----------------------------------------------
    def run_trials(
        self,
        specs: Iterable[TrialSpec],
        jobs: Optional[int] = None,
    ) -> List[TrialResult]:
        """Resolve fault-injection :class:`TrialSpec`\\ s through the same
        three layers as simulation runs: memo → persistent cache →
        execute (inline, or over a process pool when ``jobs > 1``).

        Trials are self-contained — each spec carries its own workload,
        scale and machine shape — so the runner's ``num_cores`` /
        ``region_scale`` knobs do not apply here; only its cache, pool
        and progress plumbing do.  Results come back in input order and
        are bit-identical across the serial and parallel paths (a test
        pins this).
        """
        ordered = list(dict.fromkeys(specs))
        jobs = self.jobs if jobs is None else jobs
        check_positive("jobs", jobs)

        pending = [s for s in ordered if self._lookup_trial(s) is None]
        if self.resume:
            self._credit_resume(
                (trial_cache_key(s) for s in ordered),
                pending_count=len(pending),
            )
        if pending:
            if jobs <= 1:
                for spec in pending:
                    self._execute_trial_inline(spec)
            else:
                self._run_trials_parallel(pending, jobs)
        return [self._trial_results[s] for s in ordered]

    def _execute_trial_inline(self, spec: TrialSpec) -> None:
        """Run one trial in-process (under the per-key cache lock, so a
        concurrent invocation missing on the same key waits for this
        one's entry instead of re-simulating)."""

        def execute() -> None:
            scope = self._task_scope(
                f"{spec.workload}/inject:{spec.config}#{spec.seed}"
            )
            with scope, _Timer() as timer:
                result = run_trial(
                    spec,
                    engine=self.engine,
                    snapshots=self.snapshots,
                    snapshot_store=self.snapshot_store,
                )
            self._install_trial(spec, result, "sim", timer.seconds)

        self._with_key_lock(
            trial_cache_key(spec),
            recheck=lambda: self._lookup_trial(spec) is not None,
            execute=execute,
        )

    def _run_trials_parallel(
        self, pending: Sequence[TrialSpec], jobs: int
    ) -> None:
        """Fan trials out over the supervised pool."""
        tasks = [
            SupervisedTask(
                key=trial_cache_key(spec),
                fn=_trial_execute,
                payload=(
                    spec,
                    self.engine,
                    self.snapshots,
                    (str(self.snapshot_dir)
                     if self.snapshot_dir is not None else None),
                ),
                label=f"{spec.workload}/inject:{spec.config}#{spec.seed}",
            )
            for spec in pending
        ]

        def install(task: SupervisedTask, result: Any, history) -> None:
            spec, payload, seconds = result
            self._install_trial(
                spec,
                TrialResult.from_dict(payload),
                "worker",
                seconds,
                attempts=len(history.attempts),
            )

        with self._supervisor(jobs) as sup:
            sup.run(tasks, on_complete=install)

    def _lookup_trial(self, spec: TrialSpec) -> Optional[TrialResult]:
        """Memo, then persistent cache; ``None`` means 'must execute'.

        A cached payload that fails to decode as a :class:`TrialResult`
        (truncation, hand edits, schema drift within the envelope) is
        quarantined and reported as a miss — never a crash.
        """
        memo = self._trial_results.get(spec)
        if memo is not None:
            self.progress.record_memo()
            return memo
        if self.cache is not None:
            key = trial_cache_key(spec)
            with self._phase("cache-io"), _Timer() as timer:
                payload = self.cache.load_payload(key, KIND_TRIAL)
                cached: Optional[TrialResult] = None
                if payload is not None:
                    try:
                        cached = TrialResult.from_dict(payload)
                    except (ValueError, TypeError, KeyError):
                        self.cache.quarantine(key)
            if cached is not None:
                self._trial_results[spec] = cached
                self.progress.record(
                    spec.workload, f"inject:{spec.config}", "disk",
                    timer.seconds,
                )
                return cached
            self.progress.record_miss()
        return None

    def _install_trial(
        self,
        spec: TrialSpec,
        result: TrialResult,
        source: str,
        seconds: float,
        attempts: int = 1,
    ) -> None:
        """Record progress and store a fresh trial result in every layer."""
        self._heartbeat_locks()
        self.progress.record(
            spec.workload, f"inject:{spec.config}", source, seconds
        )
        if self.snapshots:
            self.progress.record_forked()
        self._trial_results[spec] = result
        key = trial_cache_key(spec)
        if self.cache is not None:
            with self._phase("cache-io"):
                self.cache.store_payload(key, result.to_dict(), KIND_TRIAL)
        self._journal_done(
            key, KIND_TRIAL, f"{spec.workload}/inject:{spec.config}",
            attempts, seconds,
        )

    def run_traced(
        self,
        workload: str,
        request: ConfigRequest,
        tracer: Optional[Tracer] = None,
        collect_metrics: bool = True,
    ) -> RunResult:
        """Run one configuration with observability attached.

        Traced runs **bypass the cache entirely** — the tracer is not
        part of the cache key, so storing (or serving) a traced result
        would alias it with the untraced run.  The baseline profile is
        still resolved through the normal cached path; only the traced
        run itself always simulates.
        """
        with _Timer() as timer:
            sim = self.simulator(workload)
            baseline = None
            if not request.is_baseline:
                baseline = self.baseline(
                    workload, request.memory_seed
                ).baseline_profile()
            result = sim.run(
                make_options(
                    request,
                    baseline,
                    tracer=tracer,
                    collect_metrics=collect_metrics,
                    engine=self.engine,
                )
            )
        self.progress.record(
            workload, request.config, "sim", timer.seconds, traced=True
        )
        if result.obs is not None:
            self.progress.record_tracing(
                result.obs.events_captured, result.obs.events_dropped
            )
        return result

    def baseline(self, workload: str, memory_seed: int = 0) -> RunResult:
        """The NoCkpt run of a workload (same memory seed as dependents)."""
        return self.run(workload, ConfigRequest("NoCkpt", memory_seed=memory_seed))

    def run_default(
        self,
        workload: str,
        config: str,
        num_checkpoints: int = 25,
        error_count: int = 1,
        threshold: Optional[int] = None,
    ) -> RunResult:
        """Run a named configuration with the benchmark's default threshold."""
        return self.run(
            workload,
            self.default_request(
                workload,
                config,
                num_checkpoints=num_checkpoints,
                error_count=error_count,
                threshold=threshold,
            ),
        )

    def default_request(
        self,
        workload: str,
        config: str,
        num_checkpoints: int = 25,
        error_count: int = 1,
        threshold: Optional[int] = None,
    ) -> ConfigRequest:
        """The request :meth:`run_default` would run (for prefetch plans)."""
        return ConfigRequest(
            config,
            num_checkpoints=num_checkpoints,
            error_count=error_count,
            threshold=(
                threshold
                if threshold is not None
                else self.default_threshold(workload)
            ),
        )

    # -- resolution layers ---------------------------------------------------
    def _lookup(
        self, workload: str, request: ConfigRequest
    ) -> Optional[RunResult]:
        """Memo, then persistent cache; ``None`` means 'must simulate'."""
        key = (workload, request)
        memo = self._results.get(key)
        if memo is not None:
            self.progress.record_memo()
            return memo
        if self.cache is not None:
            with self._phase("cache-io"), _Timer() as timer:
                cached = self.cache.load(self.cache_key(workload, request))
            if cached is not None:
                self._results[key] = cached
                self.progress.record(
                    workload, request.config, "disk", timer.seconds
                )
                return cached
            self.progress.record_miss()
        return None

    def _simulate(self, workload: str, request: ConfigRequest) -> RunResult:
        """Execute one run in-process and store it in every layer (under
        the per-key cache lock when a cache is configured)."""
        done: List[RunResult] = []

        def execute() -> None:
            scope = self._task_scope(f"{workload}/{request.config}")
            with scope, _Timer() as timer:
                sim = self.simulator(workload)
                baseline = None
                if not request.is_baseline:
                    baseline = self.baseline(
                        workload, request.memory_seed
                    ).baseline_profile()
                result = sim.run(
                    make_options(request, baseline, engine=self.engine)
                )
            self.progress.record(
                workload, request.config, "sim", timer.seconds
            )
            if result.vector_coverage is not None:
                self.progress.record_vector_coverage(
                    result.vector_coverage["replayed_iterations"],
                    result.vector_coverage["fallback_iterations"],
                )
            self._store(
                workload, request, result, seconds=timer.seconds
            )
            done.append(result)

        def recheck() -> bool:
            found = self._lookup(workload, request)
            if found is not None:
                done.append(found)
                return True
            return False

        self._with_key_lock(
            self.cache_key(workload, request), recheck=recheck,
            execute=execute,
        )
        return done[-1]

    def _store(
        self,
        workload: str,
        request: ConfigRequest,
        result: RunResult,
        attempts: int = 1,
        seconds: float = 0.0,
    ) -> None:
        """Install a fresh result into the memo, the persistent cache
        and the completion journal."""
        self._heartbeat_locks()
        self._results[(workload, request)] = result
        key = self.cache_key(workload, request)
        if self.cache is not None:
            with self._phase("cache-io"):
                self.cache.store(key, result)
        self._journal_done(
            key, KIND_RUN, f"{workload}/{request.config}", attempts, seconds
        )

    # -- telemetry plumbing ---------------------------------------------------
    def _task_scope(self, label: str):
        """Wrap one inline task execution in its telemetry scope
        (``task_started``/heartbeats/``task_finished`` straight into the
        aggregator) — a no-op context when telemetry is off."""
        if self.telemetry is None:
            return nullcontext()
        return task_telemetry(label, self.telemetry.on_frame)

    def _phase(self, name: str):
        """Time one parent-side phase (cache I/O happens in this
        process even for pooled campaigns) on the campaign profiler."""
        if self.telemetry is None:
            return nullcontext()
        return self.telemetry.profiler.phase(name)

    # -- resilience plumbing -------------------------------------------------
    def _supervisor(self, jobs: int) -> Supervisor:
        """A configured supervised pool, registered as active so chaos
        tests and ops tooling can reach the live workers."""
        sup = Supervisor(
            self.resilience,
            jobs,
            progress=self.progress,
            tracer=self.resilience_tracer,
            metrics=self.resilience_metrics,
            telemetry=self.telemetry,
            hooks=self.supervisor_hooks,
        )
        self._active_supervisor = sup

        original_close = sup.close

        def close(force: bool = False) -> None:
            original_close(force)
            if self._active_supervisor is sup:
                self._active_supervisor = None
            self.last_failure_report = sup.failure_report

        sup.close = close  # type: ignore[method-assign]
        return sup

    def _journal_done(
        self, key: str, kind: str, label: str, attempts: int, seconds: float
    ) -> None:
        """Append one completion record to the write-ahead journal."""
        if self.journal is not None:
            self.journal.append(
                JournalRecord(
                    key=key, kind=kind, label=label,
                    attempts=attempts, seconds=seconds,
                )
            )

    def _credit_resume(
        self, keys: Iterable[str], pending_count: int
    ) -> None:
        """Count tasks the journal says are already done (each key
        credited once per runner) and surface the resume through obs."""
        fresh = [
            k for k in keys
            if k in self._resume_keys and k not in self._resume_credited
        ]
        if not fresh:
            return
        self._resume_credited.update(fresh)
        self.progress.record_resumed(len(fresh))
        self.resilience_metrics.counter("resilience.resumed_tasks").inc(
            len(fresh)
        )
        tracer = self.resilience_tracer
        if tracer is not None and getattr(tracer, "enabled", False):
            tracer.emit(
                CampaignResumed(
                    ts_ns=0.0,
                    core=MACHINE,
                    journaled=len(fresh),
                    pending=pending_count,
                )
            )

    def _heartbeat_locks(self) -> None:
        """Refresh the mtime of every currently-held key lock.

        Called per completed task (install/store time), which bounds the
        staleness clock by the longest *single* task rather than the
        whole fan-out; cheap (one utime per held lock, usually zero or
        one of them).
        """
        for lock in self._held_locks:
            lock.heartbeat()

    def _with_key_lock(
        self,
        key: str,
        recheck: Callable[[], bool],
        execute: Callable[[], None],
    ) -> None:
        """Run ``execute`` under ``key``'s best-effort cache lock.

        Without a cache there is nothing to race on — execute directly.
        When the lock is already held by a concurrent invocation, wait
        (bounded by the policy), then ``recheck`` the cache: if the
        winner published, reuse its entry; otherwise execute anyway —
        the lock is an optimisation, never a correctness gate.

        Held locks are registered on ``_held_locks`` for the duration of
        ``execute`` so :meth:`_heartbeat_locks` can refresh their mtimes
        — an owner legitimately computing past the staleness window
        (e.g. a lock held across a nested baseline run) must not get
        broken by a waiting peer.
        """
        if self.cache is None:
            execute()
            return
        lock = KeyLock(
            self.cache.lock_path(key),
            wait_s=self.resilience.lock_wait_s,
            stale_s=self.resilience.lock_stale_s,
        )
        if not lock.try_acquire():
            # Contended: another invocation is (or was) computing this
            # key — wait for it, then prefer its published entry.
            lock.acquire()
            if recheck():
                lock.release()
                return
        self._held_locks.append(lock)
        try:
            execute()
        finally:
            self._held_locks.remove(lock)
            lock.release()

    # -- parallel fan-out ----------------------------------------------------
    def _run_parallel(
        self, pending: Sequence[Tuple[str, ConfigRequest]], jobs: int
    ) -> None:
        """Fan ``pending`` out over the supervised pool, baselines first.

        Two phases: every needed NoCkpt baseline runs first (workers need
        its per-core useful-time profile to place boundaries and errors),
        then all remaining pairs run fully independently.  One supervisor
        spans both phases, so surviving workers keep their warm
        simulator memos.
        """
        baseline_reqs: Dict[Tuple[str, ConfigRequest], None] = {}
        for wl, req in pending:
            if req.is_baseline:
                baseline_reqs.setdefault((wl, req), None)
            else:
                base = ConfigRequest("NoCkpt", memory_seed=req.memory_seed)
                baseline_reqs.setdefault((wl, base), None)

        # Pairs already in `pending` are known misses; only implicit
        # baselines (needed but not requested) get a fresh lookup.
        pending_set = set(pending)
        phase1 = [
            key
            for key in baseline_reqs
            if key in pending_set or self._lookup(*key) is None
        ]
        phase2 = [(wl, req) for wl, req in pending if not req.is_baseline]

        with self._supervisor(jobs) as sup:
            if phase1:
                self._dispatch_supervised(sup, phase1, baselines=None)
            if phase2:
                profiles = {
                    key: list(self._results[key].per_core_useful_ns)
                    for key in baseline_reqs
                }
                self._dispatch_supervised(sup, phase2, baselines=profiles)

    def _dispatch_supervised(
        self,
        sup: Supervisor,
        pairs: Sequence[Tuple[str, ConfigRequest]],
        baselines: Optional[Dict[Tuple[str, ConfigRequest], List[float]]],
    ) -> None:
        """Run one phase of pairs through the supervisor, installing
        each result (memo + cache + journal) the moment it completes."""
        tasks: List[SupervisedTask] = []
        for wl, req in pairs:
            profile = None
            if baselines is not None:
                profile = baselines[
                    (wl, ConfigRequest("NoCkpt", memory_seed=req.memory_seed))
                ]
            tasks.append(
                SupervisedTask(
                    key=self.cache_key(wl, req),
                    fn=_worker_execute,
                    payload=(
                        wl, req, self.machine, self.region_scale, self.reps,
                        profile, self.engine,
                    ),
                    label=f"{wl}/{req.config}",
                )
            )

        def install(task: SupervisedTask, result: Any, history) -> None:
            wl, req, payload, seconds = result
            self.progress.record(wl, req.config, "worker", seconds)
            self._store(
                wl, req, RunResult.from_dict(payload),
                attempts=len(history.attempts), seconds=seconds,
            )

        sup.run(tasks, on_complete=install)

    # -- derived metrics ------------------------------------------------------
    def time_overhead(self, workload: str, request: ConfigRequest) -> float:
        """Fractional time overhead of a configuration w.r.t. NoCkpt."""
        return time_overhead(
            self.run(workload, request),
            self.baseline(workload, request.memory_seed),
        )

    def energy_overhead(self, workload: str, request: ConfigRequest) -> float:
        """Fractional energy overhead of a configuration w.r.t. NoCkpt."""
        return energy_overhead(
            self.run(workload, request),
            self.baseline(workload, request.memory_seed),
        )

    def workloads(self) -> List[str]:
        """All benchmark names."""
        return all_workload_names()
