"""Tests for repro.util.tables, units and validation."""

import pytest

from repro.util.tables import format_percent, format_table
from repro.util.units import (
    bytes_per_second,
    cycles_from_ns,
    ns_from_cycles,
    seconds_from_ns,
)
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
)


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a ")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456]])
        assert "1.23" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.1234) == "12.34%"

    def test_digits(self):
        assert format_percent(0.5, digits=0) == "50%"


class TestUnits:
    def test_cycles_roundtrip(self):
        freq = 1.09e9
        assert ns_from_cycles(cycles_from_ns(10.0, freq), freq) == pytest.approx(10.0)

    def test_one_ghz_cycle(self):
        assert cycles_from_ns(1.0, 1e9) == pytest.approx(1.0)

    def test_seconds_from_ns(self):
        assert seconds_from_ns(1e9) == pytest.approx(1.0)

    def test_bandwidth(self):
        assert bytes_per_second(7.6) == pytest.approx(7.6e9)


class TestValidation:
    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive("x", 0)

    def test_check_positive_accepts(self):
        check_positive("x", 0.1)

    def test_check_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_non_negative_accepts_zero(self):
        check_non_negative("x", 0)

    def test_check_in_range(self):
        check_in_range("x", 0.5, 0, 1)
        with pytest.raises(ValueError):
            check_in_range("x", 1.5, 0, 1)

    def test_check_power_of_two(self):
        check_power_of_two("x", 64)
        for bad in (0, -2, 3, 48):
            with pytest.raises(ValueError):
                check_power_of_two("x", bad)
