"""One fault-injection trial: flip a bit, recover, verify bit-exactly.

A trial executes the same workload twice through the real mechanism
stack (interpreter, directory log bits, checkpoint store, ACR handler):

* the **golden pass** runs error-free and snapshots memory at every
  checkpoint plus the final state;
* the **faulty pass** replays the identical deterministic execution,
  flips one bit in live state at a schedule-driven step, lets execution
  continue until the scheduled detection point, then performs the
  paper's recovery — :func:`choose_safe_checkpoint` over the real
  establishment times, log application newest-first, Slice recomputation
  of omitted records — and resumes to completion.

Verification is *semantic bit-exactness* against the golden pass at two
points: immediately after rollback (against the safe checkpoint's
snapshot) and at program end (against the golden final state).  Memory
snapshots only hold explicitly-written words, and a rollback may
materialise a word at its deterministic initial value, so absent keys
compare as :meth:`MemoryImage.initial_value`.

Injection targets (each mapped to a paper mechanism in DESIGN §3.3):

``mem``
    Flip a bit of a memory word whose address is covered by the open
    interval's log (a logged or omitted first-modification).  The
    oldest applied log wins during rollback, so recovery must restore
    the pre-corruption value exactly.
``log``
    Flip a bit inside a *retained but never-applied* interval-log
    record (the newest completed checkpoint's log: rollback applies the
    open log plus logs younger than the safe checkpoint, and the safe
    checkpoint under latency ≤ period is precisely the newest completed
    one at occurrence time).  Recovery must ignore the corruption; an
    over-application bug surfaces as a divergence.
``addrmap``
    Replace a committed AddrMap entry with a copy whose operand
    snapshot has one bit flipped (entries are frozen).  Lookup ECC
    detects the damaged snapshot: :meth:`may_omit` hits are refused and
    the store logs normally, so recovery never executes a corrupt
    Slice.  ACR configurations only.
``arch``
    Flip a bit of a live architectural register.  Rollback restores the
    architectural snapshot of the safe checkpoint, and deterministic
    re-execution must reconverge to the golden final state.

When a requested target is not viable at the drawn injection point
(e.g. ``log`` before any checkpoint exists, ``addrmap`` under BER), the
injector falls back along ``requested → mem → arch``; the provenance
records both the requested and the actual target.

A deliberately seeded recovery defect (``TrialSpec.defect``) replaces
the production rollback with a broken variant — the campaign's own
verifier must catch it as a divergence with correct provenance, which
is how the harness proves it can detect real bugs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.acr.handlers import AcrCheckpointHandler
from repro.arch.buffers import AddrMapEntry
from repro.arch.config import MachineConfig
from repro.arch.directory import Directory
from repro.arch.memctrl import MemorySystem
from repro.ckpt.checkpoint import CheckpointStore
from repro.ckpt.log import IntervalLog
from repro.ckpt.recovery import RecoveryEngine
from repro.compiler.embed import compile_program
from repro.compiler.policy import ThresholdPolicy
from repro.compiler.slices import SliceTable
from repro.energy.model import EnergyModel
from repro.errors.detection import choose_safe_checkpoint
from repro.errors.model import ErrorModel, ErrorOccurrence
from repro.isa.interpreter import Interpreter, MemoryImage
from repro.sim.vector.interp import make_interpreter
from repro.isa.program import Program
from repro.obs.events import (
    MACHINE,
    FaultInjected,
    RecoveryDiverged,
    RecoveryVerified,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import emit as _telemetry_mod
from repro.obs.telemetry.frames import TaskHeartbeat
from repro.obs.tracer import Tracer
from repro.util.rng import DeterministicRng
from repro.util.validation import check_in_range, check_positive
from repro.workloads.registry import get_workload

__all__ = [
    "CONFIGS",
    "DEFECTS",
    "OUTCOMES",
    "TARGET_KINDS",
    "Divergence",
    "Injection",
    "TrialResult",
    "TrialSpec",
    "run_trial",
]

#: Injection target kinds, in campaign rotation order.
TARGET_KINDS = ("mem", "log", "addrmap", "arch")

#: Checkpointing configurations a trial can exercise: the BER baseline
#: (every first-modification logged) and ACR (omission + recomputation).
CONFIGS = ("BER", "ACR")

#: Trial outcomes.
OUTCOMES = ("recovered-exact", "diverged", "unrecoverable")

#: Deliberately seeded recovery defects (verifier self-tests).
#: ``skip-recompute`` drops one omitted record's Slice re-execution
#: (the oldest applied log's first omission — nothing overwrites it);
#: ``misorder-logs`` applies interval logs oldest-first, violating the
#: newest-first/oldest-wins rule of §III-B.
DEFECTS = ("skip-recompute", "misorder-logs")

#: At most this many per-address divergences are kept on a result (the
#: total count is always exact).
MAX_REPORTED_DIVERGENCES = 16

_WORD_BITS = 64


def _require_fields(doc: Any, cls: type) -> Dict[str, Any]:
    """Strict decode guard: ``doc`` must carry exactly ``cls``'s fields."""
    if not isinstance(doc, dict):
        raise ValueError(f"{cls.__name__} payload is not an object")
    expected = {f.name for f in fields(cls)}
    if set(doc) != expected:
        missing = expected - set(doc)
        extra = set(doc) - expected
        raise ValueError(
            f"bad {cls.__name__} payload: missing {sorted(missing)}, "
            f"unexpected {sorted(extra)}"
        )
    return doc


def _check_int(name: str, value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    return value


@dataclass(frozen=True)
class TrialSpec:
    """Everything that determines one fault-injection trial.

    The spec is the complete recipe: two trials with equal specs produce
    bit-identical results, which is what makes per-trial caching sound
    (:func:`repro.experiments.cache.trial_cache_key` hashes every field
    via :meth:`canonical_key`).
    """

    workload: str
    config: str = "ACR"
    seed: int = 0
    target: str = "mem"
    num_cores: int = 2
    steps_per_interval: int = 4
    iters_per_step: int = 8
    region_scale: float = 0.05
    reps: Optional[int] = 4
    threshold: Optional[int] = None
    memory_seed: int = 0
    detection_latency_fraction: float = 0.5
    defect: Optional[str] = None

    def __post_init__(self) -> None:
        if self.config not in CONFIGS:
            raise ValueError(f"unknown config {self.config!r} (use BER|ACR)")
        if self.target not in TARGET_KINDS:
            raise ValueError(
                f"unknown injection target {self.target!r} "
                f"(use {'|'.join(TARGET_KINDS)})"
            )
        if self.defect is not None and self.defect not in DEFECTS:
            raise ValueError(
                f"unknown defect {self.defect!r} (use {'|'.join(DEFECTS)})"
            )
        check_positive("num_cores", self.num_cores)
        check_positive("steps_per_interval", self.steps_per_interval)
        check_positive("iters_per_step", self.iters_per_step)
        check_positive("region_scale", self.region_scale)
        check_in_range(
            "detection_latency_fraction",
            self.detection_latency_fraction,
            0.0,
            1.0,
        )

    def canonical_key(self) -> Tuple[Tuple[str, Any], ...]:
        """Every field as sorted (name, value) pairs — the cache-key
        contribution of this trial (mirrors ``ConfigRequest``)."""
        return tuple(
            (f.name, getattr(self, f.name))
            for f in sorted(fields(self), key=lambda f: f.name)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, doc: Any) -> "TrialSpec":
        doc = _require_fields(doc, cls)
        return cls(**doc)  # __post_init__ re-validates


@dataclass(frozen=True)
class Injection:
    """Provenance of one bit flip.

    ``requested`` is the campaign's target kind; ``kind`` is what was
    actually hit after viability fallback.  ``interval`` is the open
    checkpoint interval at injection time, ``step`` the harness step
    count at the flip.  ``address`` is ``-1`` for architectural flips;
    ``register`` is ``-1`` for everything else.  ``before``/``after``
    are the 64-bit values around the flip.
    """

    requested: str
    kind: str
    step: int
    interval: int
    core: int
    address: int
    register: int
    bit: int
    before: int
    after: int
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, doc: Any) -> "Injection":
        doc = _require_fields(doc, cls)
        if doc["kind"] not in TARGET_KINDS or doc["requested"] not in TARGET_KINDS:
            raise ValueError("bad injection target kind")
        for name in ("step", "interval", "core", "address", "register",
                     "bit", "before", "after"):
            _check_int(name, doc[name])
        if not isinstance(doc["detail"], str):
            raise ValueError("injection detail must be a string")
        return cls(**doc)


@dataclass(frozen=True)
class Divergence:
    """One address where recovered state disagreed with the golden run.

    ``phase`` is ``rollback`` (compared against the safe checkpoint's
    snapshot; ``interval`` is that checkpoint's index) or ``final``
    (compared against the golden end state; ``interval`` is ``-1``).
    """

    phase: str
    address: int
    interval: int
    expected: int
    actual: int

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, doc: Any) -> "Divergence":
        doc = _require_fields(doc, cls)
        if doc["phase"] not in ("rollback", "final"):
            raise ValueError(f"bad divergence phase {doc['phase']!r}")
        for name in ("address", "interval", "expected", "actual"):
            _check_int(name, doc[name])
        return cls(**doc)


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial (JSON round-trippable, cached per trial).

    Times (``occurred``/``detected``) are on the harness's period axis:
    checkpoint ``k`` is established at time ``k + 1``; one checkpoint
    interval is ``1.0``.
    """

    spec: TrialSpec
    outcome: str
    injection: Injection
    occurred: float
    detected: float
    injection_step: int
    detection_step: int
    steps: int
    checkpoints: int
    safe_checkpoint: int
    skipped_corrupted: bool
    restored_records: int
    recomputed_values: int
    ecc_lookup_hits: int
    addresses_checked: int
    divergence_count: int
    divergences: Tuple[Divergence, ...]
    detail: str

    @property
    def recovered_exactly(self) -> bool:
        return self.outcome == "recovered-exact"

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "spec":
                doc[f.name] = value.to_dict()
            elif f.name == "injection":
                doc[f.name] = value.to_dict()
            elif f.name == "divergences":
                doc[f.name] = [d.to_dict() for d in value]
            else:
                doc[f.name] = value
        return doc

    @classmethod
    def from_dict(cls, doc: Any) -> "TrialResult":
        doc = dict(_require_fields(doc, cls))
        doc["spec"] = TrialSpec.from_dict(doc["spec"])
        doc["injection"] = Injection.from_dict(doc["injection"])
        if not isinstance(doc["divergences"], list):
            raise ValueError("divergences must be a list")
        doc["divergences"] = tuple(
            Divergence.from_dict(d) for d in doc["divergences"]
        )
        if doc["outcome"] not in OUTCOMES:
            raise ValueError(f"bad outcome {doc['outcome']!r}")
        for name in ("injection_step", "detection_step", "steps",
                     "checkpoints", "restored_records", "recomputed_values",
                     "ecc_lookup_hits", "addresses_checked",
                     "divergence_count"):
            if _check_int(name, doc[name]) < 0:
                raise ValueError(f"{name} must be non-negative")
        _check_int("safe_checkpoint", doc["safe_checkpoint"])
        for name in ("occurred", "detected"):
            if not isinstance(doc[name], (int, float)) or isinstance(
                doc[name], bool
            ):
                raise ValueError(f"{name} must be a number")
            doc[name] = float(doc[name])
        if not isinstance(doc["skipped_corrupted"], bool):
            raise ValueError("skipped_corrupted must be a boolean")
        if not isinstance(doc["detail"], str):
            raise ValueError("detail must be a string")
        if doc["outcome"] == "diverged" and doc["divergence_count"] == 0:
            raise ValueError("diverged outcome with zero divergences")
        return cls(**doc)


# --------------------------------------------------------------------------
# The mechanism pass: real components driven step by step.
# --------------------------------------------------------------------------
class _MechanismPass:
    """One execution of the workload through the checkpointing stack.

    Mirrors the simulator's store path (directory log bit → ``may_omit``
    → log record/omission → handler bookkeeping) but executes on a step
    grid the injector can address: one *step* is ``iters_per_step``
    iterations on every live core, and a checkpoint is established every
    ``steps_per_interval`` steps (at time ``step / steps_per_interval``
    on the period axis, so checkpoint ``k`` lands at ``k + 1``).
    """

    def __init__(
        self,
        spec: TrialSpec,
        programs: Sequence[Program],
        slice_tables: Optional[Sequence[SliceTable]],
        config: MachineConfig,
        engine: str = "interp",
    ) -> None:
        self.spec = spec
        self.config = config
        self.memory = MemoryImage(seed=spec.memory_seed)
        self.directory = Directory(spec.num_cores)
        self.store = CheckpointStore(config.arch_state_bytes, spec.num_cores)
        self.handler: Optional[AcrCheckpointHandler] = (
            AcrCheckpointHandler(config, slice_tables)
            if slice_tables is not None
            else None
        )
        self.engine = RecoveryEngine(
            config, MemorySystem(config), EnergyModel()
        )
        self.interpreters = [
            make_interpreter(engine, p, self.memory, on_store=self._on_store)
            for p in programs
        ]
        self.initial_arch = [it.arch_state() for it in self.interpreters]
        self.snapshots: List[Dict[int, int]] = []
        self.arch_snapshots: List[List[Tuple[int, int, List[int]]]] = []
        self.steps = 0
        self.n_instructions = 0
        self.ecc_lookup_hits = 0
        self._active = True
        self._corrupt_entries: Set[int] = set()
        # Advisory heartbeat channel (repro.obs.telemetry): sampled once
        # here so a disabled campaign pays a single module-global read.
        self._telemetry = _telemetry_mod.telemetry_active()

    # -- the store path ------------------------------------------------------
    def _on_store(self, ev) -> None:
        if not self._active:  # post-recovery resume: machinery is done
            return
        if not self.directory.test_and_set_log(ev.address):
            entry = None
            if self.handler is not None:
                entry = self.handler.may_omit(ev.thread, ev.address)
                if entry is not None and id(entry) in self._corrupt_entries:
                    # ECC over the operand snapshot detects the flipped
                    # word at lookup: the association is refused (and
                    # conservatively masked) and the store logs normally,
                    # so recovery never executes a corrupt Slice.
                    self.ecc_lookup_hits += 1
                    self.handler.addrmaps[ev.thread].invalidate(ev.address)
                    entry = None
            if entry is not None:
                self.store.current_log.add_omitted(
                    ev.address, entry, ev.thread, ev.old_value
                )
            else:
                self.store.current_log.add_record(
                    ev.address, ev.old_value, ev.thread
                )
        if self.handler is not None:
            self.handler.on_store(ev.thread, ev.site, ev.address, ev.regs)

    # -- stepping ------------------------------------------------------------
    @property
    def all_done(self) -> bool:
        return all(it.done for it in self.interpreters)

    def step(self) -> None:
        for it in self.interpreters:
            if not it.done:
                chunk = it.step_iterations(self.spec.iters_per_step)
                self.n_instructions += chunk.instructions
        self.steps += 1

    def at_boundary(self) -> bool:
        return self.steps % self.spec.steps_per_interval == 0

    def checkpoint(self) -> None:
        """Establish the next checkpoint (boundary protocol)."""
        time = self.steps / self.spec.steps_per_interval
        if self._telemetry:
            _telemetry_mod.emit(
                TaskHeartbeat,
                interval=len(self.snapshots),
                instructions=self.n_instructions,
            )
        self.snapshots.append(self.memory.snapshot())
        self.arch_snapshots.append(
            [it.arch_state() for it in self.interpreters]
        )
        self.store.establish(time, time)
        self.directory.clear_log_bits()
        if self.handler is not None:
            self.handler.on_checkpoint()

    def run_to_end(self) -> None:
        """The golden pass: run error-free, checkpointing on schedule."""
        while not self.all_done:
            self.step()
            if self.at_boundary() and not self.all_done:
                self.checkpoint()

    def resume_to_end(self) -> None:
        """Post-recovery: run out the program, machinery disabled."""
        self._active = False
        for it in self.interpreters:
            while not it.done:
                it.step_iterations(1 << 20)

    # -- injection -----------------------------------------------------------
    def inject(self, rng: DeterministicRng, requested: str) -> Injection:
        """Flip one bit per the requested target, falling back along
        ``requested → mem → arch`` when a target is not viable here."""
        chain = [requested] + [k for k in ("mem", "arch") if k != requested]
        for kind in chain:
            inj = getattr(self, f"_inject_{kind}")(rng)
            if inj is not None:
                return replace(inj, requested=requested)
        raise ValueError(
            "no viable injection target (workload produced no state?)"
        )

    def _inject_mem(self, rng: DeterministicRng) -> Optional[Injection]:
        log = self.store.current_log
        covered = {r.address for r in log.records}
        covered.update(o.address for o in log.omitted)
        if not covered:
            return None
        candidates = sorted(covered)
        address = candidates[rng.randint(0, len(candidates) - 1)]
        bit = rng.randint(0, _WORD_BITS - 1)
        before = self.memory.read(address)
        after = before ^ (1 << bit)
        self.memory.write(address, after)  # the fault bypasses the log path
        return Injection(
            requested="", kind="mem", step=self.steps,
            interval=self.store.count, core=MACHINE, address=address,
            register=-1, bit=bit, before=before, after=after,
            detail=f"word covered by open-interval log "
                   f"({len(candidates)} candidates)",
        )

    def _inject_log(self, rng: DeterministicRng) -> Optional[Injection]:
        if not self.store.checkpoints:
            return None
        ckpt = self.store.checkpoints[-1]
        if not ckpt.log.records:
            return None
        idx = rng.randint(0, len(ckpt.log.records) - 1)
        rec = ckpt.log.records[idx]
        bit = rng.randint(0, _WORD_BITS - 1)
        corrupted = rec.old_value ^ (1 << bit)
        # LogRecord is frozen: model the flip by replacing the record in
        # the retained log storage.
        ckpt.log.records[idx] = type(rec)(rec.address, corrupted, rec.core)
        return Injection(
            requested="", kind="log", step=self.steps,
            interval=self.store.count, core=rec.core, address=rec.address,
            register=-1, bit=bit, before=rec.old_value, after=corrupted,
            detail=f"record {idx} of checkpoint {ckpt.index}'s log "
                   f"(retained, never applied)",
        )

    def _inject_addrmap(self, rng: DeterministicRng) -> Optional[Injection]:
        if self.handler is None:
            return None
        # Entries already referenced by an omitted record would feed a
        # corrupt operand straight into an *applied* recomputation whose
        # result can be the oldest write to its address — those model a
        # different (unprotected) failure mode, so the ECC-at-lookup
        # semantics pick among unreferenced entries only.
        used: Set[int] = set()
        for log in self._retained_logs():
            for om in log.omitted:
                used.add(id(om.entry))
        candidates: List[Tuple[int, AddrMapEntry]] = []
        for core, addrmap in enumerate(self.handler.addrmaps):
            for entry in addrmap.committed_entries():
                if id(entry) not in used and entry.operands:
                    candidates.append((core, entry))
        if not candidates:
            return None
        core, entry = candidates[rng.randint(0, len(candidates) - 1)]
        op_index = rng.randint(0, len(entry.operands) - 1)
        bit = rng.randint(0, _WORD_BITS - 1)
        before = entry.operands[op_index]
        after = before ^ (1 << bit)
        operands = tuple(
            after if i == op_index else v
            for i, v in enumerate(entry.operands)
        )
        flipped = AddrMapEntry(entry.address, entry.slice_, operands)
        if not self.handler.addrmaps[core].swap_committed(entry, flipped):
            return None
        self._corrupt_entries.add(id(flipped))
        return Injection(
            requested="", kind="addrmap", step=self.steps,
            interval=self.store.count, core=core, address=entry.address,
            register=-1, bit=bit, before=before, after=after,
            detail=f"operand {op_index} of slice site "
                   f"{entry.slice_.site} (committed generation)",
        )

    def _inject_arch(self, rng: DeterministicRng) -> Optional[Injection]:
        live = [i for i, it in enumerate(self.interpreters) if not it.done]
        if not live:
            return None
        core = live[rng.randint(0, len(live) - 1)]
        kernel, iteration, regs = self.interpreters[core].arch_state()
        if not regs:
            return None
        register = rng.randint(0, len(regs) - 1)
        bit = rng.randint(0, _WORD_BITS - 1)
        before = regs[register]
        after = before ^ (1 << bit)
        regs[register] = after
        self.interpreters[core].restore_arch_state((kernel, iteration, regs))
        return Injection(
            requested="", kind="arch", step=self.steps,
            interval=self.store.count, core=core, address=-1,
            register=register, bit=bit, before=before, after=after,
            detail=f"r{register} at kernel {kernel} iteration {iteration}",
        )

    def _retained_logs(self) -> List[IntervalLog]:
        logs = [self.store.current_log]
        logs.extend(c.log for c in self.store.checkpoints)
        return logs

    # -- recovery ------------------------------------------------------------
    def restore_arch(self, safe_index: int) -> None:
        states = (
            self.arch_snapshots[safe_index]
            if safe_index >= 0
            else self.initial_arch
        )
        for it, state in zip(self.interpreters, states):
            it.restore_arch_state(state)

    def apply_rollback(
        self, logs: Sequence[IntervalLog], defect: Optional[str]
    ) -> str:
        """Apply the rollback — production path, or a seeded defect.

        Returns a description of the sabotage performed ("" for the
        production path) so divergence reports carry its provenance.
        """
        if defect is None:
            self.engine.apply_rollback(self.memory, logs)
            return ""
        if defect == "misorder-logs":
            self.engine.apply_rollback(self.memory, list(reversed(logs)))
            return "defect: logs applied oldest-first"
        if defect == "skip-recompute":
            # Skip the first omitted record of the *oldest* applied log:
            # no older log overwrites its address, so the skipped
            # recomputation is load-bearing.
            skip = None
            for log in reversed(logs):
                if log.omitted:
                    skip = log.omitted[0]
                    break
            for log in logs:
                for rec in log.records:
                    self.memory.write(rec.address, rec.old_value)
                for om in log.omitted:
                    if om is skip:
                        continue
                    value = om.entry.slice_.execute(om.entry.operands)
                    self.memory.write(om.address, value)
            if skip is None:
                return "defect: skip-recompute (no omitted records in scope)"
            return (
                f"defect: skipped recompute of address {skip.address:#x}"
            )
        raise ValueError(f"unknown defect {defect!r}")


def _diff_memory(
    expected: Dict[int, int],
    memory: MemoryImage,
    phase: str,
    interval: int,
) -> Tuple[int, int, List[Divergence]]:
    """Semantic bit-exact compare: (addresses checked, mismatches, sample).

    ``expected`` is a golden ``MemoryImage.snapshot()``; addresses absent
    on either side compare at their deterministic initial value (both
    images share the seed), so materialised-but-unchanged words are not
    false divergences.
    """
    actual = memory.snapshot()
    addresses = sorted(set(expected) | set(actual))
    count = 0
    sample: List[Divergence] = []
    for address in addresses:
        want = expected.get(address)
        if want is None:
            want = memory.initial_value(address)
        got = actual.get(address)
        if got is None:
            got = memory.initial_value(address)
        if want != got:
            count += 1
            if len(sample) < MAX_REPORTED_DIVERGENCES:
                sample.append(
                    Divergence(phase, address, interval, want, got)
                )
    return len(addresses), count, sample


def _record_vector_coverage(
    metrics: MetricsRegistry, passes: Sequence[_MechanismPass]
) -> None:
    """Fold VectorInterpreter coverage counters into the registry.

    No-op under the classic engine (plain interpreters carry no
    coverage attributes).  Fallbacks are keyed by denial reason
    (``ACR009``–``ACR012``, or ``observed-loads`` when a load observer
    forced the classic loop).
    """
    replayed = fallback = 0
    reasons: Dict[str, int] = {}
    for p in passes:
        for it in p.interpreters:
            counted = getattr(it, "replayed_iterations", None)
            if counted is None:
                return
            replayed += counted
            fallback += it.fallback_iterations
            for reason, n in it.fallback_reasons.items():
                reasons[reason] = reasons.get(reason, 0) + n
    metrics.counter("vector.replayed_iterations").inc(replayed)
    metrics.counter("vector.fallback_iterations").inc(fallback)
    for reason, n in sorted(reasons.items()):
        metrics.counter(f"vector.fallback.{reason}").inc(n)
    total = replayed + fallback
    if total:
        metrics.histogram("vector.coverage").observe(replayed / total)


def _build_passes(
    spec: TrialSpec,
    engine: str = "interp",
) -> Tuple["_MechanismPass", "_MechanismPass"]:
    """Build the golden and faulty passes from one compiled workload."""
    workload = get_workload(spec.workload)
    programs = workload.build_programs(
        spec.num_cores, region_scale=spec.region_scale, reps=spec.reps
    )
    config = MachineConfig(num_cores=spec.num_cores)
    slice_tables = None
    if spec.config == "ACR":
        threshold = (
            spec.threshold
            if spec.threshold is not None
            else workload.default_threshold
        )
        compiled = [
            compile_program(p, ThresholdPolicy(threshold)) for p in programs
        ]
        programs = [c.program for c in compiled]
        slice_tables = [c.slices for c in compiled]
    golden = _MechanismPass(spec, programs, slice_tables, config, engine)
    faulty = _MechanismPass(spec, programs, slice_tables, config, engine)
    return golden, faulty


def run_trial(
    spec: TrialSpec,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    engine: str = "interp",
) -> TrialResult:
    """Execute one fault-injection trial; see the module doc for shape.

    ``engine`` selects the interpreter flavour for both passes; like the
    simulator's knob it never reaches the trial cache key — results are
    bit-identical across engines (pinned by the equivalence suite).
    """
    golden, faulty = _build_passes(spec, engine)
    golden.run_to_end()
    total_steps = golden.steps
    if total_steps < 2:
        raise ValueError(
            f"workload {spec.workload!r} too short to inject into "
            f"({total_steps} steps) — lower iters_per_step"
        )
    golden_final = golden.memory.snapshot()

    spi = spec.steps_per_interval
    rng = DeterministicRng(spec.seed, "inject")
    injection_step = rng.randint(1, total_steps - 1)
    # The flip lands strictly inside its interval (mid-step), so the
    # occurrence never coincides with a checkpoint establishment — the
    # boundary tie-break is pinned by dedicated unit tests instead.
    occurred = (injection_step + 0.5) / spi
    model = ErrorModel(spec.detection_latency_fraction)
    detected = model.occurrence(occurred, 1.0).detected_ns
    detection_step = int(math.ceil(detected * spi - 1e-9))
    detection_step = max(injection_step + 1, min(total_steps, detection_step))
    # Like the simulator, detection clamps to the end of execution.
    detected = min(detected, total_steps / spi)
    occurrence = ErrorOccurrence(occurred, detected)

    tracer = tracer if (tracer is not None and tracer.enabled) else None
    injection: Optional[Injection] = None
    while not faulty.all_done:
        if faulty.steps == injection_step:
            injection = faulty.inject(rng, spec.target)
            if tracer is not None:
                tracer.emit(FaultInjected(
                    ts_ns=occurred, core=injection.core,
                    target=injection.kind, address=injection.address,
                    bit=injection.bit,
                ))
            if metrics is not None:
                metrics.counter("inject.faults").inc()
                metrics.counter(f"inject.target.{injection.kind}").inc()
        faulty.step()
        if injection is not None and faulty.steps == detection_step:
            break
        if faulty.at_boundary() and not faulty.all_done:
            faulty.checkpoint()
    assert injection is not None  # injection_step < total_steps

    # -- detection → safe-checkpoint selection → rollback ------------------
    checkpoint_times = [c.useful_ns for c in faulty.store.checkpoints]
    choice = choose_safe_checkpoint(occurrence, checkpoint_times)
    safe = choice.checkpoint_index

    def _result(
        outcome: str,
        restored: int = 0,
        recomputed: int = 0,
        checked: int = 0,
        count: int = 0,
        sample: Sequence[Divergence] = (),
        detail: str = "",
    ) -> TrialResult:
        if metrics is not None:
            metrics.counter("inject.trials").inc()
            metrics.counter(
                "inject." + outcome.replace("-", "_")
            ).inc()
            if faulty.ecc_lookup_hits:
                metrics.counter("inject.ecc_lookup_hits").inc(
                    faulty.ecc_lookup_hits
                )
            _record_vector_coverage(metrics, (golden, faulty))
        return TrialResult(
            spec=spec,
            outcome=outcome,
            injection=injection,
            occurred=occurred,
            detected=detected,
            injection_step=injection_step,
            detection_step=detection_step,
            steps=total_steps,
            checkpoints=len(checkpoint_times),
            safe_checkpoint=safe,
            skipped_corrupted=choice.skipped_corrupted,
            restored_records=restored,
            recomputed_values=recomputed,
            ecc_lookup_hits=faulty.ecc_lookup_hits,
            addresses_checked=checked,
            divergence_count=count,
            divergences=tuple(sample),
            detail=detail,
        )

    try:
        logs = faulty.store.logs_to_rollback(safe)
    except ValueError as exc:
        return _result("unrecoverable", detail=str(exc))

    defect_note = faulty.apply_rollback(logs, spec.defect)
    restored = sum(len(log.records) for log in logs)
    recomputed = sum(len(log.omitted) for log in logs)
    expected = golden.snapshots[safe] if safe >= 0 else {}
    checked, count, sample = _diff_memory(
        expected, faulty.memory, "rollback", safe
    )

    # -- resume from the recovery line and re-verify at program end --------
    faulty.restore_arch(safe)
    faulty.resume_to_end()
    final_checked, final_count, final_sample = _diff_memory(
        golden_final, faulty.memory, "final", -1
    )
    checked += final_checked
    count += final_count
    sample = (sample + final_sample)[:MAX_REPORTED_DIVERGENCES]

    if tracer is not None:
        if count == 0:
            tracer.emit(RecoveryVerified(
                ts_ns=detected, core=MACHINE,
                safe_checkpoint=safe, addresses_checked=checked,
            ))
        else:
            for div in sample:
                tracer.emit(RecoveryDiverged(
                    ts_ns=detected, core=MACHINE, address=div.address,
                    interval=div.interval, expected=div.expected,
                    actual=div.actual,
                ))
    if metrics is not None:
        metrics.histogram("inject.restored_records").observe(restored)
        metrics.histogram("inject.recomputed_values").observe(recomputed)

    outcome = "recovered-exact" if count == 0 else "diverged"
    return _result(
        outcome, restored, recomputed, checked, count, sample, defect_note
    )
