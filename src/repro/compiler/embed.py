"""Binary embedding: attach ``ASSOC-ADDR`` to covered stores.

``compile_program`` runs the full pass: slice every store site, filter
through the selection policy, build the :class:`SliceTable`, and rewrite
the program so every covered store carries its ``ASSOC-ADDR`` companion
(the ``assoc`` flag — costed as one extra instruction by the simulator,
modelled after a store to L1-D per the paper's evaluation setup).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Tuple

from repro.compiler.ddg import DataDependenceGraph
from repro.compiler.policy import SelectionPolicy, ThresholdPolicy
from repro.compiler.slicer import SliceRejection, extract_slice
from repro.compiler.slices import SliceTable
from repro.isa.instructions import Instruction, StoreInstr
from repro.isa.program import Kernel, Program

__all__ = ["CompileStats", "CompiledProgram", "compile_program"]


@dataclass(frozen=True)
class CompileStats:
    """Aggregate statistics of one compile-pass run."""

    sites_total: int
    sites_sliceable: int
    sites_embedded: int
    sites_loop_carried: int
    sites_trivial: int
    embedded_bytes: int

    @property
    def coverage(self) -> float:
        """Fraction of store sites with an embedded slice."""
        if self.sites_total == 0:
            return 0.0
        return self.sites_embedded / self.sites_total

    def rejection_counts(self) -> "dict[SliceRejection, int]":
        """Per-:class:`SliceRejection` reason counts (CLI statistics)."""
        return {
            SliceRejection.LOOP_CARRIED: self.sites_loop_carried,
            SliceRejection.TRIVIAL: self.sites_trivial,
        }


@dataclass(frozen=True)
class CompiledProgram:
    """A program with embedded slices.

    ``program`` is a rewritten copy: covered stores have ``assoc=True``;
    site ids are preserved (the rewrite keeps store order unchanged).

    ``peers`` names the other cores' programs of the run this program
    belongs to (empty for single-core compilation).  They feed the
    cross-core half of the vector-safety certificates and the ACR010
    lint rule; the compile pass itself never reads them.
    """

    program: Program
    slices: SliceTable
    stats: CompileStats
    peers: Tuple[Program, ...] = ()

    @property
    def certificates(self) -> "Tuple[object, ...]":
        """Vector-safety certificates for this program's segments.

        Computed lazily from the rewritten program (the ``assoc`` flag
        does not affect addresses or dataflow) against ``peers`` as the
        other cores; per-program summaries are cached, so repeated
        access is cheap.
        """
        # Imported here: repro.verify sits above the compiler layer.
        from repro.verify.absint.certify import certify_run

        run = certify_run([self.program, *self.peers])
        return run[0]


def compile_program(
    program: Program,
    policy: SelectionPolicy | None = None,
    *,
    verify: bool = False,
) -> CompiledProgram:
    """Run the ACR compiler pass over ``program``.

    With ``policy=None`` the paper's default greedy threshold of 10 is
    used.  Returns a new :class:`CompiledProgram`; the input is untouched.

    With ``verify=True`` the slice soundness verifier
    (:func:`repro.verify.verify_program`) runs as a post-pass over the
    static rules (the differential oracle is left to ``repro lint``) and
    a :class:`repro.verify.SliceVerificationError` is raised on any
    error-severity finding.
    """
    if policy is None:
        policy = ThresholdPolicy()

    table = SliceTable()
    embedded_sites: set[int] = set()
    loop_carried = trivial = sliceable = 0

    for kernel in program.kernels:
        ddg = DataDependenceGraph(kernel)
        for idx, ins in enumerate(kernel.body):
            if not isinstance(ins, StoreInstr):
                continue
            extraction = extract_slice(kernel, idx, ddg)
            if extraction.rejection is SliceRejection.LOOP_CARRIED:
                loop_carried += 1
                continue
            if extraction.rejection is SliceRejection.TRIVIAL:
                trivial += 1
                continue
            sliceable += 1
            assert extraction.slice is not None
            if policy.accept(extraction.slice):
                table.add(extraction.slice)
                embedded_sites.add(extraction.site)

    new_kernels: List[Kernel] = []
    for kernel in program.kernels:
        body: List[Instruction] = []
        for ins in kernel.body:
            if isinstance(ins, StoreInstr) and ins.site in embedded_sites:
                ins = dataclasses.replace(ins, assoc=True)
            body.append(ins)
        new_kernels.append(
            Kernel(
                kernel.name, body, kernel.trip_count, kernel.phase,
                kernel.ghost_alu,
            )
        )

    rewritten = Program(new_kernels, program.thread_id)
    # The rewrite preserves store order, so site ids are stable.
    assert len(rewritten.store_sites) == len(program.store_sites)

    stats = CompileStats(
        sites_total=len(program.store_sites),
        sites_sliceable=sliceable,
        sites_embedded=len(embedded_sites),
        sites_loop_carried=loop_carried,
        sites_trivial=trivial,
        embedded_bytes=table.encoded_bytes,
    )
    compiled = CompiledProgram(rewritten, table, stats)
    if verify:
        # Imported here: repro.verify sits above the compiler layer.
        from repro.verify.engine import SliceVerificationError, verify_program

        report = verify_program(compiled, policy=policy, oracle=False)
        if not report.ok:
            raise SliceVerificationError(report)
    return compiled
