"""Table II: checkpoint-size reduction vs Slice-length threshold.

Paper shape, per benchmark (threshold 10/20/30/40/50):
  bt 36.5/45.1/85.4/88.4/89.9 — big jump at 30;
  cg  7.0/67.1/89.7/...       — big jump at 20;
  mg 11.6/19.7/88.0/...       — big jump at 30;
  is ~constant (all slices under 10);
  lu keeps growing past 50 (long tail);
  sp grows gradually through 40.
"""

from _bench_lib import run_once

from repro.experiments.tables_ import table2_threshold_sweep


def test_table2(benchmark, runner, emit):
    fig = run_once(benchmark, lambda: table2_threshold_sweep(runner))
    emit("table2_threshold", fig.render())
    s = fig.series  # wl -> [red@10, red@20, red@30, red@40, red@50]

    for wl, reds in s.items():
        # Monotone: a higher threshold embeds a superset of slices.
        for a, b in zip(reds, reds[1:]):
            assert b >= a - 1e-9, (wl, reds)

    # The benchmark-specific jump locations.
    assert s["cg"][1] - s["cg"][0] > 0.35      # jump at 20
    assert s["mg"][2] - s["mg"][1] > 0.35      # jump at 30
    assert s["bt"][2] - s["bt"][1] > 0.25      # jump at 30
    assert s["is"][4] - s["is"][0] < 0.05      # flat
    assert s["lu"][4] - s["lu"][3] > 0.03      # still growing at 50
    assert s["sp"][3] - s["sp"][2] > 0.10      # growth through 40
    # ft only unlocks its burst at threshold >= 40.
    assert s["ft"][3] - s["ft"][2] > 0.08
