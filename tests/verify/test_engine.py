"""Tests for the lint engine: rule selection, reports, compile post-pass."""

import pytest

from repro.compiler.embed import compile_program
from repro.compiler.policy import ThresholdPolicy
from repro.verify import (
    ALL_RULE_IDS,
    Severity,
    SliceVerificationError,
    seed_defect,
    select_rules,
    verify_program,
)

from tests.verify.conftest import make_cp


class TestSelectRules:
    def test_defaults_to_everything(self):
        assert select_rules() == list(ALL_RULE_IDS)

    def test_select_exact_and_prefix(self):
        assert select_rules(["ACR003"]) == ["ACR003"]
        assert select_rules(["ACR0"]) == list(ALL_RULE_IDS)
        assert select_rules(["ACR01"]) == ["ACR010", "ACR011", "ACR012"]

    def test_case_insensitive(self):
        assert select_rules(["acr005"]) == ["ACR005"]

    def test_ignore_removes(self):
        chosen = select_rules(ignore=["ACR008"])
        assert "ACR008" not in chosen
        assert len(chosen) == len(ALL_RULE_IDS) - 1

    def test_ignore_beats_select(self):
        assert select_rules(["ACR001"], ["ACR001"]) == []

    @pytest.mark.parametrize("bad", [["ACR9"], ["bogus"], ["ACR001", "XYZ"]])
    def test_unknown_pattern_raises(self, bad):
        with pytest.raises(ValueError, match="unknown rule pattern"):
            select_rules(bad)


class TestVerifyProgram:
    def test_select_filters_findings(self):
        mutated = seed_defect(make_cp(), "ACR001")
        assert verify_program(mutated, select=["ACR001"]).rule_ids() == ["ACR001"]
        assert verify_program(mutated, select=["ACR003"]).findings == []

    def test_ignoring_the_oracle_skips_replay(self):
        report = verify_program(make_cp(), ignore=["ACR008"])
        assert report.oracle_values_checked == 0

    def test_no_policy_disables_acr005(self):
        mutated = seed_defect(make_cp(), "ACR005")
        assert verify_program(mutated, oracle=False).findings == []
        report = verify_program(
            mutated, policy=ThresholdPolicy(10), oracle=False
        )
        assert report.rule_ids() == ["ACR005"]

    def test_json_document_shape(self):
        doc = verify_program(seed_defect(make_cp(), "ACR003")).to_json_dict()
        assert set(doc) == {"findings", "summary"}
        assert doc["summary"]["ok"] is False
        assert doc["summary"]["errors"] == doc["summary"]["total"] >= 1
        assert doc["summary"]["by_rule"].keys() == {"ACR003"}
        finding = doc["findings"][0]
        assert finding["rule"] == "ACR003"
        assert finding["severity"] == "error"
        assert isinstance(finding["site"], int)

    def test_render_lists_findings_and_summary(self):
        text = verify_program(seed_defect(make_cp(), "ACR006")).render()
        assert "ACR006" in text
        assert "lint:" in text


class FicklePolicy:
    """Accepts the first ``budget`` accept() calls, rejects the rest.

    With budget equal to the number of sliceable sites it accepts every
    slice during embedding, then rejects them all when the verify
    post-pass re-asks — a stateful policy violating the implicit
    contract that accept() is a pure function of the slice.
    """

    def __init__(self, budget):
        self.budget = budget

    def accept(self, sl):
        self.budget -= 1
        return self.budget >= 0


class TestCompileVerifyPostPass:
    def test_clean_program_compiles_under_verify(self):
        cp = make_cp()
        # Recompile the same source program with verify=True: no raise.
        verified = compile_program(
            cp.program, ThresholdPolicy(10), verify=True
        )
        assert len(verified.slices) == len(cp.slices)

    def test_inconsistent_policy_raises(self):
        source = make_cp().program
        sliceable = compile_program(source).stats.sites_sliceable
        with pytest.raises(SliceVerificationError) as exc:
            compile_program(source, FicklePolicy(sliceable), verify=True)
        err = exc.value
        assert err.report.rule_ids() == ["ACR005"]
        assert "ACR005" in str(err)

    def test_severity_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert max(Severity) is Severity.ERROR
