"""Test package."""
