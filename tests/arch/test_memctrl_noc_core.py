"""Tests for repro.arch.memctrl, noc and core timing."""

import pytest

from repro.arch.config import MachineConfig
from repro.arch.core import CoreTimingModel
from repro.arch.hierarchy import DataAccess
from repro.arch.memctrl import MemorySystem
from repro.arch.noc import MeshNoc


@pytest.fixture
def cfg():
    return MachineConfig(num_cores=8)


class TestMemorySystem:
    def test_controller_mapping(self, cfg):
        ms = MemorySystem(cfg)
        assert len(ms.controllers) == 2
        assert ms.controller_for_core(0).index == 0
        assert ms.controller_for_core(3).index == 0
        assert ms.controller_for_core(4).index == 1
        assert ms.controller_for_core(7).index == 1

    def test_transfer_time_scales_with_bytes(self, cfg):
        ms = MemorySystem(cfg)
        t1 = ms.bulk_transfer_time_ns({0: 1024})
        t2 = ms.bulk_transfer_time_ns({0: 1024 * 1024})
        assert t2 > t1 * 10

    def test_zero_bytes_zero_time(self, cfg):
        assert MemorySystem(cfg).bulk_transfer_time_ns({0: 0}) == 0.0

    def test_parallel_controllers_beat_serial(self, cfg):
        ms = MemorySystem(cfg)
        # Same total bytes: split across 2 controllers vs on one.
        split = ms.bulk_transfer_time_ns({0: 1 << 20, 4: 1 << 20})
        ms2 = MemorySystem(cfg)
        serial = ms2.bulk_transfer_time_ns({0: 1 << 20, 1: 1 << 20})
        assert split < serial

    def test_same_controller_serialises(self, cfg):
        ms = MemorySystem(cfg)
        t = ms.bulk_transfer_time_ns({0: 1 << 20, 1: 1 << 20})
        single = MemorySystem(cfg).bulk_transfer_time_ns({0: 2 << 20})
        assert t == pytest.approx(single)

    def test_total_bytes_tracked(self, cfg):
        ms = MemorySystem(cfg)
        ms.bulk_transfer_time_ns({0: 100, 5: 200})
        assert ms.total_bytes == 300

    def test_negative_bytes_rejected(self, cfg):
        with pytest.raises(ValueError):
            MemorySystem(cfg).bulk_transfer_time_ns({0: -1})

    def test_single_core_config(self):
        cfg1 = MachineConfig(num_cores=1)
        ms = MemorySystem(cfg1)
        assert len(ms.controllers) == 1
        assert ms.controller_for_core(0).index == 0


class TestMeshNoc:
    def test_barrier_grows_with_cores(self, cfg):
        noc = MeshNoc(cfg)
        times = [noc.barrier_latency_ns(n) for n in (1, 2, 4, 8, 16)]
        assert times == sorted(times)
        assert times[-1] > times[0]

    def test_single_core_barrier_is_base(self, cfg):
        noc = MeshNoc(cfg)
        assert noc.barrier_latency_ns(1) == cfg.noc_barrier_base_ns

    def test_diameter(self, cfg):
        noc = MeshNoc(cfg)
        assert noc.diameter_hops(1) == 1
        assert noc.diameter_hops(4) == 2
        assert noc.diameter_hops(16) == 6

    def test_barrier_counter(self, cfg):
        noc = MeshNoc(cfg)
        noc.barrier_latency_ns(4)
        noc.barrier_latency_ns(4)
        assert noc.barriers == 2

    def test_average_hops_nonnegative(self, cfg):
        assert MeshNoc(cfg).average_hops() >= 0.0


class TestCoreTimingModel:
    def test_issue_time(self, cfg):
        t = CoreTimingModel(cfg)
        assert t.issue_time_ns(4) == pytest.approx(cfg.cycle_ns)
        assert t.issue_time_ns(8) == pytest.approx(2 * cfg.cycle_ns)

    def test_l1_hit_no_stall(self, cfg):
        t = CoreTimingModel(cfg)
        acc = DataAccess(cfg.l1d.latency_ns, True, False, False, 0)
        assert t.stall_time_ns(acc) == 0.0

    def test_memory_stall_amortised_by_mlp(self, cfg):
        t = CoreTimingModel(cfg)
        lat = cfg.l1d.latency_ns + cfg.l2.latency_ns + cfg.mem_latency_ns
        acc = DataAccess(lat, False, False, True, 0)
        assert t.stall_time_ns(acc) == pytest.approx(
            (lat - cfg.l1d.latency_ns) / cfg.mlp
        )

    def test_alu_burst_serial(self, cfg):
        t = CoreTimingModel(cfg)
        assert t.alu_burst_time_ns(10) == pytest.approx(10 * cfg.cycle_ns)


class TestMachineConfig:
    def test_table1_defaults(self):
        cfg = MachineConfig()
        assert cfg.freq_hz == pytest.approx(1.09e9)
        assert cfg.issue_width == 4
        assert cfg.l1d.size_bytes == 32 * 1024
        assert cfg.l2.size_bytes == 512 * 1024
        assert cfg.mem_latency_ns == 120.0

    def test_describe_contains_table1_facts(self):
        text = MachineConfig().describe()
        for token in ("22nm", "1.09 GHz", "4-issue", "32KB", "512KB", "120ns", "7.6"):
            assert token in text

    def test_with_cores(self):
        cfg = MachineConfig().with_cores(32)
        assert cfg.num_cores == 32
        assert cfg.num_controllers == 8

    def test_mlp_bounded_by_outstanding(self):
        with pytest.raises(ValueError):
            MachineConfig(mlp=16.0)

    def test_cache_geometry_validation(self):
        from repro.arch.config import CacheConfig

        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, 3, 1.0)  # not divisible

    def test_num_sets(self):
        from repro.arch.config import CacheConfig

        c = CacheConfig("c", 32 * 1024, 8, 1.0)
        assert c.num_sets == 64
