"""Tests for the analysis package."""

import pytest

from repro.analysis.baselines import (
    HierarchicalConfig,
    full_snapshot_costs,
    hierarchical_costs,
)
from repro.analysis.compare import compare_runs
from repro.analysis.decomposition import (
    decompose_overhead,
    energy_by_category,
    recovery_anatomy,
)


class TestDecomposition:
    def test_components_sum_to_total(self, small_ckpt_run):
        d = decompose_overhead(small_ckpt_run)
        assert d.total_ns == pytest.approx(small_ckpt_run.overhead_ns)
        assert d.boundary_ns + d.execution_ns + d.recovery_ns == pytest.approx(
            d.total_ns, rel=0.01
        )
        assert d.recovery_ns == 0.0  # error-free run

    def test_describe_renders(self, small_ckpt_run):
        text = decompose_overhead(small_ckpt_run).describe()
        assert "TOTAL overhead" in text

    def test_baseline_run_has_no_overhead(self, small_baseline):
        d = decompose_overhead(small_baseline)
        assert d.total_ns == pytest.approx(0.0, abs=1e-6)


class TestRecoveryAnatomy:
    def test_error_free(self, small_ckpt_run):
        a = recovery_anatomy(small_ckpt_run)
        assert a.count == 0
        assert a.total_ns == 0.0

    def test_with_error(self, small_simulator, small_baseline):
        from repro.errors.injection import UniformErrors
        from repro.sim.simulator import SimulationOptions

        run = small_simulator.run(
            SimulationOptions(
                label="e",
                scheme="global",
                acr=True,
                num_checkpoints=6,
                baseline=small_baseline.baseline_profile(),
                errors=UniformErrors(2),
            )
        )
        a = recovery_anatomy(run)
        assert a.count == 2
        assert a.waste_ns > 0
        assert a.recomputed_values > 0
        assert a.total_ns == pytest.approx(run.recovery_time_ns)


class TestEnergyByCategory:
    def test_categories_cover_ledger(self, small_acr_run):
        cats = energy_by_category(small_acr_run)
        assert sum(cats.values()) == pytest.approx(small_acr_run.energy_pj)
        assert "checkpointing" in cats
        assert "ACR structures" in cats
        assert "leakage" in cats

    def test_baseline_has_no_ckpt_energy(self, small_baseline):
        cats = energy_by_category(small_baseline)
        assert "checkpointing" not in cats


class TestFullSnapshot:
    def test_bookkeeping(self, small_ckpt_run):
        fs = full_snapshot_costs(small_ckpt_run)
        assert fs.total_bytes == sum(
            iv.footprint_bytes for iv in small_ckpt_run.intervals
        )
        assert fs.max_bytes == small_ckpt_run.intervals[-1].footprint_bytes
        assert fs.write_time_ns > 0
        assert fs.inflation == pytest.approx(
            fs.total_bytes / small_ckpt_run.total_checkpoint_bytes
        )

    def test_inflation_on_large_footprint_workload(self):
        """When the resident footprint dwarfs the per-interval delta —
        the common HPC case — snapshots move far more data than the log.
        A one-shot big write followed by small updates models that."""
        from repro.arch.config import MachineConfig
        from repro.isa.builder import chain_kernel
        from repro.isa.instructions import AddressPattern
        from repro.isa.program import Program
        from repro.sim.simulator import SimulationOptions, Simulator

        kernels = [
            chain_kernel(
                "init", AddressPattern(0, 1, 4096),
                [AddressPattern(1 << 22, 1, 4096)], 2, 4096,
            )
        ]
        for rep in range(8):
            # ghost-heavy updates: the big init completes well inside the
            # first interval, later intervals only touch 64 words.
            kernels.append(
                chain_kernel(
                    f"update.r{rep}", AddressPattern(0, 1, 64),
                    [AddressPattern(1 << 22, 1, 64, offset=rep)], 2, 64,
                    phase=1 + rep, ghost_alu=300,
                )
            )
        sim = Simulator([Program(kernels)], MachineConfig(num_cores=1))
        base = sim.run_baseline()
        run = sim.run(
            SimulationOptions(
                label="ck", scheme="global", num_checkpoints=4,
                baseline=base.baseline_profile(),
            )
        )
        fs = full_snapshot_costs(run)
        assert fs.inflation > 1.5

    def test_footprint_monotone(self, small_ckpt_run):
        sizes = [iv.footprint_bytes for iv in small_ckpt_run.intervals]
        assert sizes == sorted(sizes)
        assert sizes[0] > 0

    def test_empty_run(self, small_baseline):
        fs = full_snapshot_costs(small_baseline)
        assert fs.total_bytes == 0


class TestHierarchical:
    def test_drain_accounting(self, small_ckpt_run):
        h = hierarchical_costs(small_ckpt_run, HierarchicalConfig(every_k=2))
        assert h.drained_checkpoints == small_ckpt_run.checkpoint_count // 2
        assert 0 < h.drained_bytes <= small_ckpt_run.total_checkpoint_bytes
        assert h.drain_time_ns > 0

    def test_acr_drains_less(self, small_ckpt_run, small_acr_run):
        cfg = HierarchicalConfig(every_k=2)
        plain = hierarchical_costs(small_ckpt_run, cfg)
        acr = hierarchical_costs(small_acr_run, cfg)
        assert acr.drained_bytes < plain.drained_bytes
        assert acr.drain_time_ns < plain.drain_time_ns

    def test_every_k_one_drains_everything(self, small_ckpt_run):
        h = hierarchical_costs(small_ckpt_run, HierarchicalConfig(every_k=1))
        assert h.drained_bytes == small_ckpt_run.total_checkpoint_bytes


class TestCompare:
    def test_render(self, small_baseline, small_ckpt_run, small_acr_run):
        text = compare_runs(
            small_baseline, [small_ckpt_run, small_acr_run], title="t"
        )
        assert "Ckpt_NE" in text and "ReCkpt_NE" in text
        assert "omissions" in text
