"""Tests for the errors package (model, injection, detection)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors.detection import choose_safe_checkpoint
from repro.errors.injection import NoErrors, PoissonErrors, UniformErrors
from repro.errors.model import ErrorModel, ErrorOccurrence


class TestErrorModel:
    def test_detection_latency(self):
        m = ErrorModel(0.5)
        assert m.detection_latency_ns(100.0) == 50.0

    def test_occurrence(self):
        occ = ErrorModel(0.5).occurrence(10.0, 100.0)
        assert occ.occurred_ns == 10.0
        assert occ.detected_ns == 60.0
        assert occ.detection_latency_ns == 50.0

    def test_latency_above_period_rejected(self):
        with pytest.raises(ValueError):
            ErrorModel(1.5)

    def test_detected_before_occurred_rejected(self):
        with pytest.raises(ValueError):
            ErrorOccurrence(10.0, 5.0)


class TestSchedules:
    def test_no_errors(self):
        assert NoErrors().occurrence_times(1e6) == []

    def test_uniform_single_error_mid_run(self):
        times = UniformErrors(1).occurrence_times(100.0)
        assert times == [50.0]

    def test_uniform_five_errors(self):
        times = UniformErrors(5).occurrence_times(600.0)
        assert times == [100.0, 200.0, 300.0, 400.0, 500.0]

    def test_uniform_all_within_run(self):
        for n in range(1, 10):
            times = UniformErrors(n).occurrence_times(1000.0)
            assert len(times) == n
            assert all(0 < t < 1000.0 for t in times)

    def test_uniform_zero_count_rejected(self):
        with pytest.raises(ValueError):
            UniformErrors(0)

    def test_poisson_deterministic_per_seed(self):
        a = PoissonErrors(3.0, seed=1).occurrence_times(1000.0)
        b = PoissonErrors(3.0, seed=1).occurrence_times(1000.0)
        assert a == b

    def test_poisson_seed_changes_times(self):
        a = PoissonErrors(3.0, seed=1).occurrence_times(1000.0)
        b = PoissonErrors(3.0, seed=2).occurrence_times(1000.0)
        assert a != b

    def test_poisson_times_sorted_and_bounded(self):
        times = PoissonErrors(5.0, seed=3).occurrence_times(1000.0)
        assert times == sorted(times)
        assert all(0 <= t < 1000.0 for t in times)

    def test_poisson_mean_roughly_right(self):
        total = sum(
            len(PoissonErrors(4.0, seed=s).occurrence_times(1000.0))
            for s in range(50)
        )
        assert 100 < total < 300  # mean 200

    def test_poisson_empty_run(self):
        assert PoissonErrors(4.0, seed=1).occurrence_times(0.0) == []


class TestSafeCheckpointChoice:
    CKPTS = [100.0, 200.0, 300.0]

    def choice(self, occurred, detected):
        return choose_safe_checkpoint(
            ErrorOccurrence(occurred, detected), self.CKPTS
        )

    def test_detected_same_interval(self):
        # Error and detection both inside interval (200, 300): roll back
        # to ckpt at 200 (index 1).
        c = self.choice(250.0, 280.0)
        assert c.checkpoint_index == 1
        assert not c.skipped_corrupted

    def test_fig2_case_checkpoint_corrupted(self):
        # Error right before ckpt at 200, detected after it: ckpt 200 is
        # suspect, roll back to ckpt at 100 (index 0).
        c = self.choice(195.0, 230.0)
        assert c.checkpoint_index == 0
        assert c.skipped_corrupted

    def test_error_before_first_checkpoint(self):
        c = self.choice(50.0, 80.0)
        assert c.checkpoint_index == -1
        assert not c.skipped_corrupted

    def test_error_before_first_detected_after_it(self):
        c = self.choice(90.0, 150.0)
        assert c.checkpoint_index == -1
        assert c.skipped_corrupted

    def test_checkpoint_at_exact_occurrence_is_safe(self):
        c = self.choice(200.0, 250.0)
        assert c.checkpoint_index == 1
        assert not c.skipped_corrupted

    def test_unsorted_checkpoints_rejected(self):
        with pytest.raises(ValueError):
            choose_safe_checkpoint(ErrorOccurrence(1.0, 2.0), [3.0, 1.0])

    def test_no_checkpoints(self):
        c = choose_safe_checkpoint(ErrorOccurrence(1.0, 2.0), [])
        assert c.checkpoint_index == -1

    @given(
        st.floats(min_value=0, max_value=1000),
        st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_safe_checkpoint_is_never_after_occurrence(self, occurred, latency):
        c = choose_safe_checkpoint(
            ErrorOccurrence(occurred, occurred + latency), self.CKPTS
        )
        if c.checkpoint_index >= 0:
            assert self.CKPTS[c.checkpoint_index] <= occurred
            # And it is the most recent such checkpoint.
            if c.checkpoint_index + 1 < len(self.CKPTS):
                assert self.CKPTS[c.checkpoint_index + 1] > occurred
