"""Full paper regeneration: every figure and table in one report.

``python -m repro.experiments.report [--scale S] [--cores N] [--jobs J]``
prints the whole evaluation section.  The benchmark harness calls the
same generators; this entry point exists for humans.

:func:`paper_run_matrix` enumerates every (workload, request) pair the
report needs, so the runner can resolve them up front — in parallel when
``jobs > 1``, and from the persistent cache when one is configured —
before the (cheap, memo-served) generators assemble their tables.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.experiments.configs import ConfigRequest
from repro.experiments.figures import (
    fig1_error_rate,
    fig6_time_overhead,
    fig7_energy_overhead,
    fig8_edp_reduction,
    fig9_checkpoint_size,
    fig10_temporal,
    fig11_error_sweep,
    fig12_frequency_sweep,
    fig13_local,
    scalability,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables_ import table1_configuration, table2_threshold_sweep

__all__ = ["generate_report", "paper_run_matrix", "main"]

#: Sweep domains shared by the figure generators' default arguments.
_THRESHOLDS = (10, 20, 30, 40, 50)
_ERROR_COUNTS = (1, 2, 3, 4, 5)
_CHECKPOINT_COUNTS = (25, 50, 75, 100)
_LOCAL_PAIRS = (
    "Ckpt_NE_Loc", "Ckpt_E_Loc", "ReCkpt_NE_Loc", "ReCkpt_E_Loc",
)


def paper_run_matrix(
    runner: ExperimentRunner,
) -> List[Tuple[str, ConfigRequest]]:
    """Every (workload, request) pair the default report touches.

    Mirrors the generators' default arguments exactly — the pairs must
    hash to the same cache keys the generators will ask for, so the
    prefetch pass leaves nothing to simulate afterwards.
    """
    pairs: List[Tuple[str, ConfigRequest]] = []
    for wl in runner.workloads():
        pairs.append((wl, ConfigRequest("NoCkpt")))
        # Figs. 6/7/8/9 + fig 13 globals.
        for cfg in ("Ckpt_NE", "Ckpt_E", "ReCkpt_NE", "ReCkpt_E"):
            pairs.append((wl, runner.default_request(wl, cfg)))
        # Table II (and Fig. 10 for bt): threshold sweep.
        for thr in _THRESHOLDS:
            pairs.append((wl, ConfigRequest("ReCkpt_NE", threshold=thr)))
        # Fig. 11: error sweep.
        for n in _ERROR_COUNTS:
            for cfg in ("Ckpt_E", "ReCkpt_E"):
                pairs.append(
                    (wl, runner.default_request(wl, cfg, error_count=n))
                )
        # Fig. 12: checkpoint-frequency sweep.
        for n in _CHECKPOINT_COUNTS:
            for cfg in ("Ckpt_NE", "ReCkpt_NE"):
                pairs.append(
                    (wl, runner.default_request(wl, cfg, num_checkpoints=n))
                )
        # Fig. 13: local variants.
        for cfg in _LOCAL_PAIRS:
            pairs.append((wl, runner.default_request(wl, cfg)))
    return list(dict.fromkeys(pairs))


def generate_report(
    runner: Optional[ExperimentRunner] = None,
    include_scalability: bool = False,
    stream=None,
    out_dir: Optional[Union[str, Path]] = None,
) -> None:
    """Print every reproduced artifact to ``stream`` (default: stdout).

    With ``out_dir`` set, each artifact is additionally written to
    ``<out_dir>/<name>.txt`` (the same files the benchmark harness
    leaves under ``benchmarks/reports/``).
    """
    stream = stream if stream is not None else sys.stdout
    runner = runner or ExperimentRunner()
    out_path: Optional[Path] = None
    if out_dir is not None:
        out_path = Path(out_dir)
        out_path.mkdir(parents=True, exist_ok=True)

    def emit(name: str, text: str) -> None:
        print(text, file=stream)
        print("", file=stream)
        if out_path is not None:
            (out_path / f"{name}.txt").write_text(text + "\n")

    t0 = time.time()
    # Resolve the whole run matrix first: parallel when jobs > 1, served
    # from the persistent cache when warm, memoised either way — the
    # generators below then assemble tables without simulating.
    runner.run_many(paper_run_matrix(runner))

    artifacts: List[Tuple[str, Callable[[], str]]] = [
        ("table1", lambda: table1_configuration(runner.machine)),
        ("fig01_error_rate", lambda: fig1_error_rate().render()),
        ("fig06_time_overhead", lambda: fig6_time_overhead(runner).render()),
        ("fig07_energy_overhead",
         lambda: fig7_energy_overhead(runner).render()),
        ("fig08_edp", lambda: fig8_edp_reduction(runner).render()),
        ("fig09_ckpt_size", lambda: fig9_checkpoint_size(runner).render()),
        ("table2_threshold", lambda: table2_threshold_sweep(runner).render()),
        ("fig10_temporal", lambda: fig10_temporal(runner).render()),
        ("fig11_error_sweep", lambda: fig11_error_sweep(runner).render()),
        ("fig12_ckpt_freq", lambda: fig12_frequency_sweep(runner).render()),
        ("fig13_local", lambda: fig13_local(runner).render()),
    ]
    if include_scalability:
        artifacts.append(("scalability", lambda: scalability().render()))
    for name, produce in artifacts:
        emit(name, produce())

    summary = runner.progress.summary_table()
    emit("run_summary", summary)
    print(f"[report generated in {time.time() - t0:.1f}s]", file=stream)


def main(argv=None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload region scale (speed knob)")
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent runs")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="persistent result cache directory")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-task wall-clock timeout for supervised "
                             "workers (default: none)")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="retries per failed/timed-out/killed task")
    parser.add_argument("--resume", action="store_true",
                        help="skip journaled completions (needs --cache-dir)")
    parser.add_argument("--out", type=str, default=None,
                        help="also write each artifact to <out>/<name>.txt")
    parser.add_argument("--scalability", action="store_true",
                        help="include the 8/16/32-core study (slow)")
    args = parser.parse_args(argv)
    if args.resume and args.cache_dir is None:
        parser.error("--resume needs --cache-dir")
    from repro.resilience.policy import ResiliencePolicy

    runner = ExperimentRunner(
        num_cores=args.cores, region_scale=args.scale, reps=args.reps,
        jobs=args.jobs, cache_dir=args.cache_dir,
        resilience=ResiliencePolicy(
            max_retries=args.max_retries, timeout_s=args.timeout
        ),
        resume=args.resume,
    )
    generate_report(
        runner, include_scalability=args.scalability, out_dir=args.out
    )


if __name__ == "__main__":
    main()
