"""A plan-accelerated :class:`Interpreter` for observer-style consumers.

The simulator proper swaps the whole per-core interpreter for a
:class:`~repro.sim.vector.engine.VectorCoreRunner`; consumers that need
the *interpreter interface* — the fault-injection harness builds raw
interpreters with a store observer, snapshots/restores architectural
state mid-run and injects register/memory corruption — get
:class:`VectorInterpreter` instead: a drop-in subclass that replays
validated plan segments (skipping load dispatch entirely, emitting real
:class:`StoreEvent`\\ s from precomputed register rows) and degrades to
the classic per-instruction loop whenever exactness cannot be proven.

Fallback triggers, beyond the engine's plan rules (external-load
addresses already written, in-kernel load/store overlap, unstable
register files under a store observer):

* a load observer is attached — plans skip load dispatch, so every
  ``LoadEvent`` consumer forces the classic loop (tracked under the
  engine-level reason ``observed-loads``: no certificate is involved,
  vector replay is definitionally unavailable);
* the current kernel is *tainted*: ``restore_arch_state`` may install a
  register file that diverges from the plan's rows (fault injection,
  rollback), so the restored-into kernel runs interpreted until it
  completes — **unless** the static certifier proved the kernel
  *register-renewing* (:mod:`repro.verify.absint`: every register is
  defined each iteration before any read, and definitions all precede
  the first store), in which case the entering file is dead and the
  plan rows stay exact whatever corruption the restore installed.

Per-segment coverage lands in ``replayed_iterations`` /
``fallback_iterations`` / ``fallback_reasons`` (rule ids ACR009–ACR012,
mirroring the simulator-side engine); the renewal unlock can be switched
off via the ``use_certificates`` class flag for A/B coverage tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.verify.absint.certify import KernelSummary

from repro.isa.interpreter import (
    ExecChunk,
    Interpreter,
    LoadEvent,
    MemoryImage,
    StoreEvent,
)
from repro.isa.opcodes import MASK64
from repro.isa.program import Program
from repro.sim.vector.plans import KernelPlan, plans_for

__all__ = ["VectorInterpreter", "make_interpreter"]

_INIT_MIX = 0x9E3779B97F4A7C15

#: Plans carry a cache-line stream the interpreter never reads; keying
#: the shared plan cache on the machine default keeps them shareable
#: with simulator runs on the same programs.
_DEFAULT_LINE_BYTES = 64


class VectorInterpreter(Interpreter):
    """Interpreter that fast-forwards through validated plan segments."""

    #: Consult the static register-renewal certificates to replay
    #: through tainted kernels.  Class-level so coverage tests can A/B
    #: the PR 6 behaviour (False) against the certified one (True).
    use_certificates: bool = True

    def __init__(
        self,
        program: Program,
        memory: MemoryImage,
        on_load: Optional[Callable[[LoadEvent], None]] = None,
        on_store: Optional[Callable[[StoreEvent], None]] = None,
        line_bytes: int = _DEFAULT_LINE_BYTES,
    ) -> None:
        super().__init__(program, memory, on_load=on_load, on_store=on_store)
        self._plans = plans_for(program, memory.seed, line_bytes)
        #: Kernel index whose plan is unusable after an external state
        #: restore (-1: none).  Cleared by moving past the kernel.
        self._taint_kernel = -1
        # Per kernel: body offsets (into tmpl/addrs columns) of stores.
        self._store_offsets: Dict[int, List[Tuple[int, int]]] = {}
        # Static per-kernel summaries (renewal flags) — computed lazily:
        # the common golden path never taints, so most interpreters
        # never need them.
        self._summaries: Optional[Tuple["KernelSummary", ...]] = None
        #: Coverage accounting (iterations), fallbacks keyed by reason.
        self.replayed_iterations = 0
        self.fallback_iterations = 0
        self.fallback_reasons: Dict[str, int] = {}

    def _regs_renewed(self, k: int) -> bool:
        """Did the certifier prove kernel ``k`` register-renewing?"""
        if self._summaries is None:
            from repro.verify.absint.certify import summarize_program

            self._summaries = summarize_program(self.program).kernels
        return self._summaries[k].regs_renewed

    def restore_arch_state(self, state: Tuple[int, int, List[int]]) -> None:
        super().restore_arch_state(state)
        self._taint_kernel = self._kernel_index if not self.done else -1

    def adopt_arch_state(self, state: Tuple[int, int, List[int]]) -> None:
        """Install forked-prefix state without tainting the kernel.

        A snapshot fork adopts state captured from a bit-identical
        deterministic prefix, so the entering register file matches the
        plan rows by construction — pessimising to the classic loop
        (as :meth:`restore_arch_state` must, for rollback/injection
        restores) would skew the fork's coverage and speed for no
        soundness gain.
        """
        Interpreter.restore_arch_state(self, state)

    def _count_fallback(self, reason: str, iterations: int) -> None:
        self.fallback_iterations += iterations
        self.fallback_reasons[reason] = (
            self.fallback_reasons.get(reason, 0) + iterations
        )

    def step_iterations(self, max_iterations: int) -> ExecChunk:
        if self.on_load is not None:
            chunk = super().step_iterations(max_iterations)
            self._count_fallback("observed-loads", chunk.iterations)
            return chunk
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        iterations = alu = loads = stores = assoc = 0
        words = self.memory.words_map()
        on_store = self.on_store
        kernels = self.program.kernels

        while iterations < max_iterations and not self.done:
            k = self._kernel_index
            kernel = kernels[k]
            budget = min(
                kernel.trip_count - self._iteration, max_iterations - iterations
            )
            plan = self._plans.plan(k)
            # The denial chain mirrors the certificate rules; the first
            # reason that applies is charged with the classic segment.
            reason = None
            if k == self._taint_kernel and not (
                self.use_certificates and self._regs_renewed(k)
            ):
                # Restored register file not provably dead on entry.
                reason = "ACR011"
            elif plan.overlap:
                reason = "ACR009"
            elif (
                on_store is not None
                and plan.stores_per_iter != 0
                and not plan.regs_stable
            ):
                reason = "ACR011"
            elif not words.keys().isdisjoint(plan.external_loads):
                reason = "ACR012"
            if reason is not None:
                chunk = super().step_iterations(budget)
                alu += chunk.alu
                loads += chunk.loads
                stores += chunk.stores
                assoc += chunk.assoc
                iterations += chunk.iterations
                self._count_fallback(reason, chunk.iterations)
                continue

            i0 = self._iteration
            i1 = i0 + budget
            if plan.stores_per_iter:
                self._replay_stores(plan, k, i0, i1, words)
            alu += budget * (plan.alu_per_iter + kernel.ghost_alu)
            loads += budget * plan.loads_per_iter
            stores += budget * plan.stores_per_iter
            assoc += budget * plan.assoc_per_iter
            iterations += budget
            self.replayed_iterations += budget
            if i1 >= kernel.trip_count:
                self._kernel_index += 1
                self._prepare_kernel()
            else:
                # Keep the architectural register file live so a later
                # arch_state() snapshot or classic segment is seamless.
                self._iteration = i1
                self._regs = list(plan.rows()[i1 - 1])
        return ExecChunk(iterations, alu, loads, stores, assoc)

    def _replay_stores(
        self,
        plan: KernelPlan,
        k: int,
        i0: int,
        i1: int,
        words: Dict[int, int],
    ) -> None:
        """Apply the store stream of iterations ``[i0, i1)``.

        Old values are read live (they depend on run history); new values
        and the observed register file come from the plan.
        """
        offsets = self._store_offsets.get(k)
        if offsets is None:
            offsets = [
                (j, t[1]) for j, t in enumerate(plan.tmpl) if t[0]
            ]
            self._store_offsets[k] = offsets
        addrs = plan.addrs
        svalues = plan.svalues
        api = plan.accesses_per_iter
        spi = plan.stores_per_iter
        on_store = self.on_store
        thread = self.program.thread_id
        seed = self.memory.seed
        rows = plan.rows() if on_store is not None else None
        s_idx = i0 * spi
        for i in range(i0, i1):
            base = i * api
            for j, site in offsets:
                addr = addrs[base + j]
                value = svalues[s_idx]
                s_idx += 1
                if on_store is None:
                    words[addr] = value
                    continue
                old = words.get(addr)
                if old is None:
                    x = (addr * _INIT_MIX + seed) & MASK64
                    x ^= x >> 29
                    old = (x * _INIT_MIX) & MASK64
                words[addr] = value
                on_store(
                    StoreEvent(thread, site, addr, old, value, i, rows[i])
                )


def make_interpreter(
    engine: str,
    program: Program,
    memory: MemoryImage,
    on_load: Optional[Callable[[LoadEvent], None]] = None,
    on_store: Optional[Callable[[StoreEvent], None]] = None,
) -> Interpreter:
    """Build the interpreter flavour selected by ``engine``."""
    if engine == "interp":
        return Interpreter(program, memory, on_load=on_load, on_store=on_store)
    if engine == "vector":
        return VectorInterpreter(
            program, memory, on_load=on_load, on_store=on_store
        )
    raise ValueError(f"unknown engine {engine!r} (expected 'interp' or 'vector')")
