"""Perf guardrail: the vector engine must stay fast *and* bit-identical.

CI runs this module on every push (the ``perf-guardrail`` job).  Three
properties are pinned:

1. **Bit identity on the fig6 smoke** — the two cheapest workloads run
   every-configuration sweeps under both engines; the results checksums
   must match exactly.
2. **Speedup floor** — interleaved best-of-N timing of the shared-
   simulator hot loop; the vector engine must beat the interpreter by
   ``MIN_SPEEDUP``.  The floor is deliberately well below the full-scale
   speedup recorded in ``BENCH_fig06_time_overhead.json`` (~5x): CI
   machines are noisy and small scales dilute the win with fixed costs,
   and a guardrail that cries wolf gets deleted.
3. **Committed snapshots stay valid** — ``BENCH_*.json`` at the repo
   root parse, follow schema v1, contain both engines, agree on their
   checksums (the recorded bit-identity certificate) and record a
   healthy vector speedup.

Scale knobs: ``REPRO_GUARDRAIL_MIN_SPEEDUP`` overrides the floor (CI
hosts differ), ``REPRO_BENCH_*`` the usual harness knobs.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from _bench_lib import load_snapshot, results_checksum

from repro.arch.config import MachineConfig
from repro.experiments.configs import CONFIG_NAMES, ConfigRequest, make_options
from repro.sim.simulator import Simulator
from repro.workloads.registry import get_workload

#: The two cheapest registered workloads (smallest regions/site counts).
SMOKE_WORKLOADS = ("cg", "is")

#: Vector-over-interp floor for the CI-scale hot loop.
MIN_SPEEDUP = float(os.environ.get("REPRO_GUARDRAIL_MIN_SPEEDUP", "2.0"))

#: Recorded full-scale floor the committed fig06 snapshot must show.
MIN_COMMITTED_SPEEDUP = 4.0

_SMOKE_CORES = 2
_SMOKE_SCALE = 0.2
_SMOKE_REPS = 12


def _sweep(sim, spec, engine):
    """All nine configurations under one engine -> {config: to_dict()}."""
    results = {}
    baseline = None
    for name in CONFIG_NAMES:
        request = ConfigRequest(
            name, num_checkpoints=4, threshold=spec.default_threshold
        )
        res = sim.run(make_options(request, baseline, engine=engine))
        if request.is_baseline:
            baseline = res.baseline_profile()
        results[name] = res.to_dict()
    return results


@pytest.fixture(scope="module", params=SMOKE_WORKLOADS)
def smoke(request):
    spec = get_workload(request.param)
    programs = spec.build_programs(
        _SMOKE_CORES, region_scale=_SMOKE_SCALE, reps=_SMOKE_REPS
    )
    sim = Simulator(programs, MachineConfig(num_cores=_SMOKE_CORES))
    return request.param, spec, sim


class TestBitIdentity:
    def test_fig6_smoke_checksums_match(self, smoke):
        workload, spec, sim = smoke
        interp = results_checksum(_sweep(sim, spec, "interp"))
        vector = results_checksum(_sweep(sim, spec, "vector"))
        assert interp == vector, f"engine divergence on {workload}"


class TestSpeedupFloor:
    def test_vector_beats_interpreter(self, smoke):
        workload, spec, sim = smoke
        request = ConfigRequest(
            "ReCkpt_NE", num_checkpoints=4, threshold=spec.default_threshold
        )
        baseline = sim.run(
            make_options(ConfigRequest("NoCkpt"), None, engine="vector")
        ).baseline_profile()
        opts = {
            e: make_options(request, baseline, engine=e)
            for e in ("interp", "vector")
        }
        sim.run(opts["vector"])  # warm plans/compile caches
        mins = {"interp": float("inf"), "vector": float("inf")}
        for _ in range(3):  # interleaved best-of-3
            for engine in ("interp", "vector"):
                gc.collect()
                t0 = time.perf_counter()
                sim.run(opts[engine])
                mins[engine] = min(mins[engine], time.perf_counter() - t0)
        speedup = mins["interp"] / mins["vector"]
        assert speedup >= MIN_SPEEDUP, (
            f"{workload}: vector only {speedup:.2f}x over interp "
            f"(interp {mins['interp'] * 1e3:.1f} ms, "
            f"vector {mins['vector'] * 1e3:.1f} ms, floor {MIN_SPEEDUP}x)"
        )


class TestCommittedSnapshots:
    @pytest.mark.parametrize("name", ("fig06_time_overhead", "micro"))
    def test_schema_and_identity(self, name):
        entries = load_snapshot(name)
        assert entries, f"BENCH_{name}.json missing — run snapshot_engines.py"
        by_engine = {}
        for entry in entries:
            assert entry["schema"] == 1
            assert entry["bench"] == name
            assert entry["wall_s"] > 0
            assert len(entry["results_sha256"]) == 64
            by_engine[entry["engine"]] = entry
        assert set(by_engine) == {"interp", "vector"}
        # The recorded bit-identity certificate.
        assert (
            by_engine["interp"]["results_sha256"]
            == by_engine["vector"]["results_sha256"]
        )
        assert by_engine["vector"]["wall_s"] < by_engine["interp"]["wall_s"]
        # Coverage trajectory: the vector entry records its replayed /
        # fallback counters, and every fallback names a certificate rule.
        coverage = by_engine["vector"]["vector_coverage"]
        assert coverage["replayed_iterations"] > 0
        for key in coverage:
            if key.startswith("fallback."):
                assert key.removeprefix("fallback.").startswith("ACR"), key

    def test_fig06_records_healthy_speedup(self):
        entries = load_snapshot("fig06_time_overhead")
        assert entries
        vector = next(e for e in entries if e["engine"] == "vector")
        assert vector["speedup_vs_interp"] >= MIN_COMMITTED_SPEEDUP


class TestCampaignForkSnapshot:
    """``BENCH_inject_campaign.json`` compares campaign *schedules*
    (straight O(N·T) vs fork-from-snapshot O(T + N·tail)) on one
    engine, so it gets its own shape checks rather than riding the
    engine-pair assertions above."""

    #: Recorded fork-over-straight floor the committed snapshot must
    #: show (the tentpole's acceptance bar).
    MIN_FORK_SPEEDUP = 3.0

    def test_schema_identity_and_speedup(self):
        entries = load_snapshot("inject_campaign")
        assert entries, (
            "BENCH_inject_campaign.json missing — run "
            "bench_inject_campaign.py"
        )
        by_mode = {}
        for entry in entries:
            assert entry["schema"] == 1
            assert entry["bench"] == "inject_campaign"
            assert entry["wall_s"] > 0
            assert len(entry["results_sha256"]) == 64
            assert entry["trials_per_config"] >= 16
            by_mode[entry["mode"]] = entry
        assert set(by_mode) == {"straight", "forked"}
        # The recorded bit-identity certificate: forking trials from
        # golden boundary snapshots changed nothing in the results.
        assert (
            by_mode["straight"]["results_sha256"]
            == by_mode["forked"]["results_sha256"]
        )
        assert by_mode["forked"]["wall_s"] < by_mode["straight"]["wall_s"]
        assert (
            by_mode["forked"]["speedup_vs_straight"] >= self.MIN_FORK_SPEEDUP
        )
