"""Tests for repro.sim.machine."""

from repro.arch.config import MachineConfig
from repro.sim.machine import Machine


class TestMachine:
    def test_component_counts(self):
        m = Machine(MachineConfig(num_cores=8))
        assert len(m.hierarchies) == 8
        assert len(m.memsys.controllers) == 2
        assert m.directory.num_cores == 8

    def test_aggregate_stats_start_at_zero(self):
        m = Machine(MachineConfig(num_cores=2))
        assert m.l1d_accesses() == 0
        assert m.l2_accesses() == 0
        assert m.memory_accesses() == 0
        assert m.writebacks() == 0

    def test_aggregates_sum_cores(self):
        m = Machine(MachineConfig(num_cores=2))
        m.hierarchies[0].access(0, True)
        m.hierarchies[1].access(64, False)
        assert m.l1d_accesses() == 2
        assert m.memory_accesses() == 2  # both cold misses

    def test_memory_seed_changes_image(self):
        a = Machine(MachineConfig(num_cores=1), memory_seed=1)
        b = Machine(MachineConfig(num_cores=1), memory_seed=2)
        assert a.memory.read(64) != b.memory.read(64)

    def test_default_energy_model(self):
        m = Machine(MachineConfig(num_cores=1))
        assert m.energy_model.alu_op_pj > 0
