"""Figure 12: time overhead vs number of checkpoints (25/50/75/100).

Paper shape: checkpointing overhead grows with the checkpoint count; ft
carries the largest overhead; ReCkpt_NE reduces the overhead at every
count (average ~10–14%).
"""

from _bench_lib import run_once

from repro.experiments.figures import fig12_frequency_sweep


def test_fig12(benchmark, runner, emit):
    fig = run_once(benchmark, lambda: fig12_frequency_sweep(runner))
    emit("fig12_ckpt_freq", fig.render())
    s = fig.series

    for wl, per_n in s.items():
        counts = sorted(per_n)
        ck = [per_n[n]["Ckpt_NE"] for n in counts]
        # Overhead grows with checkpoint count.
        assert all(b > a for a, b in zip(ck, ck[1:])), wl
        # ACR wins at every count.
        for n in counts:
            assert per_n[n]["ReCkpt_NE"] < per_n[n]["Ckpt_NE"], (wl, n)

    # ft and is carry the largest checkpointing overheads at the highest
    # frequency (the paper singles out ft; our is sits beside it and the
    # dense mid-field packs within a few points).
    at_100 = {wl: per_n[100]["Ckpt_NE"] for wl, per_n in s.items()}
    top3 = sorted(at_100, key=at_100.get, reverse=True)[:3]
    assert "ft" in top3
    # cg the smallest.
    assert at_100["cg"] == min(at_100.values())
