"""Determinism and cache behaviour of the parallel experiment engine.

The contract: ``jobs > 1`` only changes *where* simulations execute,
never *what* they produce — parallel results are field-for-field equal
to the serial path — and a second pass over the same matrix is served
entirely from the persistent on-disk cache.
"""

import pytest

from repro.experiments.configs import ConfigRequest
from repro.experiments.runner import ExperimentRunner

SCALE = dict(num_cores=2, region_scale=0.1, reps=12)

#: A small workload × configuration matrix covering the baseline, a plain
#: checkpointed run, an ACR run with errors, and a local-scheme run.
MATRIX = [
    (wl, ConfigRequest(cfg, num_checkpoints=6))
    for wl in ("bt", "is")
    for cfg in ("NoCkpt", "Ckpt_NE", "ReCkpt_E", "Ckpt_NE_Loc")
]


@pytest.fixture(scope="module")
def serial_results():
    runner = ExperimentRunner(**SCALE)
    return runner.run_many(MATRIX)


@pytest.fixture(scope="module")
def warm_cache_dir(tmp_path_factory, serial_results):
    """A cache directory pre-populated by a parallel first pass (also the
    determinism assertion: parallel == serial, field for field)."""
    cache_dir = tmp_path_factory.mktemp("result-cache")
    runner = ExperimentRunner(jobs=4, cache_dir=cache_dir, **SCALE)
    parallel = runner.run_many(MATRIX)
    for (wl, req), serial, par in zip(MATRIX, serial_results, parallel):
        assert par.equivalent(serial), f"parallel diverged on {wl}/{req.config}"
    # Everything pending was executed by pool workers, nothing inline.
    assert runner.progress.by_source()["sim"] == 0
    assert runner.progress.by_source()["worker"] > 0
    return cache_dir


class TestParallelDeterminism:
    def test_parallel_equals_serial(self, warm_cache_dir):
        """Creating the fixture runs the jobs=4 vs serial comparison."""
        assert warm_cache_dir.exists()

    def test_parallel_results_memoised_in_order(self, serial_results):
        runner = ExperimentRunner(jobs=4, **SCALE)
        first = runner.run_many(MATRIX)
        again = runner.run_many(MATRIX)
        assert [a is b for a, b in zip(first, again)] == [True] * len(MATRIX)

    def test_explicit_jobs_override(self, serial_results):
        runner = ExperimentRunner(**SCALE)  # jobs defaults to 1
        results = runner.run_many(MATRIX[:2], jobs=2)
        for serial, par in zip(serial_results[:2], results):
            assert par.equivalent(serial)


class TestPersistentCache:
    def test_second_run_served_entirely_from_cache(
        self, warm_cache_dir, serial_results
    ):
        runner = ExperimentRunner(jobs=4, cache_dir=warm_cache_dir, **SCALE)
        results = runner.run_many(MATRIX)
        assert runner.progress.simulated == 0, "warm pass must not simulate"
        assert runner.progress.disk_misses == 0
        assert runner.progress.disk_hits == len(MATRIX)
        assert runner.progress.hit_rate == 1.0  # the ≥95% criterion, exactly
        for serial, cached in zip(serial_results, results):
            assert cached.equivalent(serial)

    def test_serial_warm_run_also_hits(self, warm_cache_dir, serial_results):
        runner = ExperimentRunner(cache_dir=warm_cache_dir, **SCALE)
        result = runner.run("bt", MATRIX[1][1])
        assert runner.progress.disk_hits == 1
        assert runner.progress.simulated == 0
        assert result.equivalent(serial_results[1])

    def test_cached_results_lack_checkpoint_store(self, warm_cache_dir):
        runner = ExperimentRunner(cache_dir=warm_cache_dir, **SCALE)
        result = runner.run("bt", MATRIX[1][1])
        assert result.checkpoint_store is None

    def test_scale_change_misses(self, warm_cache_dir):
        runner = ExperimentRunner(
            num_cores=2, region_scale=0.1, reps=10,  # reps differ
            cache_dir=warm_cache_dir,
        )
        runner.run("bt", MATRIX[1][1])
        assert runner.progress.disk_hits == 0
        assert runner.progress.disk_misses >= 1

    def test_progress_summary_renders(self, warm_cache_dir):
        runner = ExperimentRunner(jobs=2, cache_dir=warm_cache_dir, **SCALE)
        runner.run_many(MATRIX)
        table = runner.progress.summary_table()
        assert "disk" in table and "hits" in table
        assert "100.0%" in table


class TestBaselineSeedPropagation:
    def test_dependent_run_uses_matching_baseline_seed(self):
        runner = ExperimentRunner(**SCALE)
        runner.run("bt", ConfigRequest("Ckpt_NE", num_checkpoints=6,
                                       memory_seed=3))
        memo_keys = list(runner._results)
        assert ("bt", ConfigRequest("NoCkpt", memory_seed=3)) in memo_keys
