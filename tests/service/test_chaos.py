"""Chaos coverage for the campaign service's storage tier: SIGKILL
shards (and whole worker pools) mid-campaign and assert the two headline
contracts —

* **zero completed results lost**: disk-first writes mean every finished
  run is servable after any shard loss, and recovery restores full R=2
  redundancy for every surviving key;
* **bit-identical reports**: a campaign riddled with shard and pool
  deaths produces a report byte-equal to an undisturbed solo runner's.
"""

import json
import os
import signal

import pytest

from repro.experiments.cache import KIND_RUN, ResultCache
from repro.experiments.runner import ExperimentRunner
from repro.resilience.policy import ResiliencePolicy
from repro.service.campaigns import CampaignSpec, campaign_report
from repro.service.store import ReplicatedStore

chaos = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"),
    reason="chaos tests need SIGKILL",
)

_FAST = dict(backoff_base_s=0.01, backoff_max_s=0.05)
_SHAPE = dict(num_cores=2, region_scale=0.05, reps=2)


def _spec(**overrides):
    kwargs = dict(
        workloads=("is",), configs=("Ckpt_NE", "ReCkpt_E"), **_SHAPE
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def _runner(**kw):
    kw.setdefault("num_cores", 2)
    kw.setdefault("region_scale", 0.05)
    kw.setdefault("reps", 2)
    return ExperimentRunner(**kw)


def _store(tmp_path):
    return ReplicatedStore(
        ResultCache(tmp_path / "cache"), shards=4, replicas=2
    )


def _canon(report):
    return json.dumps(report, sort_keys=True)


@chaos
@pytest.mark.chaos
def test_shard_sigkill_mid_campaign_report_bit_identical(tmp_path):
    spec = _spec()
    solo = campaign_report(_runner(), spec)

    store = _store(tmp_path)
    runner = _runner(
        jobs=2, cache=store, resilience=ResiliencePolicy(**_FAST)
    )
    kills = []

    def murder_shard(task):
        if not kills:
            pid = store.shard_pids()[1]
            if pid is not None:
                kills.append(pid)
                os.kill(pid, signal.SIGKILL)

    runner.supervisor_hooks["on_result"] = murder_shard
    try:
        disturbed = campaign_report(runner, spec)
        assert kills, "no shard was killed mid-campaign"
        assert _canon(disturbed) == _canon(solo)
        # Zero completed results lost: every campaign key is servable.
        for key in spec.keys(runner):
            assert store.load_payload(key, KIND_RUN) is not None
        # Recovery restores full R=2 redundancy for every surviving key.
        store.heartbeat()
        assert store.alive_count() == 4
        assert store.shard_deaths >= 1
        for key in store.indexed_keys():
            assert store.replica_count(key) == 2
    finally:
        store.close()


@chaos
@pytest.mark.chaos
def test_whole_pool_and_shard_sigkill_mid_campaign(tmp_path):
    spec = _spec()
    solo = campaign_report(_runner(), spec)

    store = _store(tmp_path)
    runner = _runner(
        jobs=2, cache=store, resilience=ResiliencePolicy(**_FAST)
    )
    worker_kills, shard_kills = [], []

    def murder(worker, task):
        # Kill the ENTIRE pool (both workers), once each, plus a shard.
        if len(worker_kills) < 2 and worker.process.pid is not None:
            worker_kills.append(worker.process.pid)
            os.kill(worker.process.pid, signal.SIGKILL)
        if not shard_kills:
            pid = store.shard_pids()[0]
            if pid is not None:
                shard_kills.append(pid)
                os.kill(pid, signal.SIGKILL)

    runner.supervisor_hooks["on_dispatch"] = murder
    try:
        disturbed = campaign_report(runner, spec)
        assert len(worker_kills) == 2
        assert shard_kills
        assert runner.progress.worker_deaths >= 1
        assert _canon(disturbed) == _canon(solo)
        for key in spec.keys(runner):
            assert store.load_payload(key, KIND_RUN) is not None
        store.heartbeat()
        assert store.alive_count() == 4
        for key in store.indexed_keys():
            assert store.replica_count(key) == 2
    finally:
        store.close()


@chaos
@pytest.mark.chaos
def test_majority_loss_mid_campaign_degrades_but_report_is_identical(
    tmp_path,
):
    spec = _spec()
    solo = campaign_report(_runner(), spec)

    store = _store(tmp_path)
    runner = _runner(
        jobs=2, cache=store, resilience=ResiliencePolicy(**_FAST)
    )
    tripped = []

    def blackout(task):
        if tripped:
            return
        tripped.append(True)
        for pid in store.shard_pids()[:3]:
            if pid is not None:
                os.kill(pid, signal.SIGKILL)
        store.heartbeat()  # majority loss in one sweep: circuit opens

    runner.supervisor_hooks["on_result"] = blackout
    try:
        disturbed = campaign_report(runner, spec)
        assert store.degraded
        assert _canon(disturbed) == _canon(solo)
        # Degraded mode is slower, never wrong: direct disk serves all.
        for key in spec.keys(runner):
            assert store.load_payload(key, KIND_RUN) is not None
    finally:
        store.close()
