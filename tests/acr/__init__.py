"""Test package."""
