"""Tests for the NAS benchmark specs and registry."""

import pytest

from repro.compiler.embed import compile_program
from repro.compiler.policy import ThresholdPolicy
from repro.workloads.registry import all_workload_names, get_workload

PAPER_BENCHMARKS = ("bt", "cg", "dc", "ft", "is", "lu", "mg", "sp")


class TestRegistry:
    def test_all_eight_present(self):
        assert tuple(all_workload_names()) == PAPER_BENCHMARKS

    def test_get_workload(self):
        assert get_workload("bt").name == "bt"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            get_workload("nope")


class TestSpecShapes:
    def test_is_uses_threshold_five(self):
        # Paper footnote 4.
        assert get_workload("is").default_threshold == 5
        for name in PAPER_BENCHMARKS:
            if name != "is":
                assert get_workload(name).default_threshold == 10

    def test_all_to_all_communicators(self):
        for name in ("bt", "cg", "sp"):
            assert get_workload(name).cluster_size == 0
        for name in ("ft", "is", "mg", "dc", "lu"):
            assert get_workload(name).cluster_size > 0

    def test_cg_most_compute_dense(self):
        ghosts = {n: get_workload(n).ghost_alu for n in PAPER_BENCHMARKS}
        assert ghosts["cg"] == max(ghosts.values())
        assert ghosts["ft"] == min(ghosts.values())

    def test_is_slices_capped_at_ten(self):
        spec = get_workload("is")
        assert all(b.hi <= 10 for b in spec.len_mix)

    def test_lu_has_long_tail(self):
        spec = get_workload("lu")
        assert any(b.hi > 50 for b in spec.len_mix)

    def test_bursts(self):
        assert get_workload("is").bursts[0].kind == "copy"
        assert get_workload("ft").bursts[0].kind == "chain"
        assert get_workload("ft").bursts[0].len_lo >= 31
        assert get_workload("dc").bursts[0].kind == "widen"

    def test_specs_build_and_compile(self):
        # Every benchmark builds and slices without error at a tiny scale.
        for name in PAPER_BENCHMARKS:
            spec = get_workload(name)
            programs = spec.build_programs(2, region_scale=0.15, reps=8)
            cp = compile_program(
                programs[0], ThresholdPolicy(spec.default_threshold)
            )
            assert cp.stats.sites_total > 0
            assert cp.stats.sites_embedded > 0, name

    def test_slice_length_mix_realised(self):
        """The compiled slice-length histogram reflects the spec's mix."""
        spec = get_workload("mg")  # 68% of sites at lengths 21..30
        program = spec.build_programs(1, reps=2)[0]
        cp = compile_program(program, ThresholdPolicy(50))
        hist = cp.slices.length_histogram()
        in_band = sum(n for l, n in hist.items() if 21 <= l <= 30)
        total = sum(hist.values())
        assert in_band / total > 0.5
