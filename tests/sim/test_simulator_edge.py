"""Simulator edge cases: chunking, seeds, thresholds, local errors."""

import pytest

from repro.compiler.policy import ThresholdPolicy
from repro.errors.injection import UniformErrors
from repro.errors.model import ErrorModel
from repro.sim.simulator import SimulationOptions, Simulator

from tests.conftest import tiny_machine, tiny_programs


@pytest.fixture(scope="module")
def sim():
    return Simulator(tiny_programs(4), tiny_machine(4))


@pytest.fixture(scope="module")
def prof(sim):
    return sim.run_baseline().baseline_profile()


class TestChunking:
    def test_chunk_size_does_not_change_results(self, sim, prof):
        runs = [
            sim.run(
                SimulationOptions(
                    label=f"chunk{c}",
                    scheme="global",
                    acr=True,
                    num_checkpoints=6,
                    baseline=prof,
                    chunk_iterations=c,
                )
            )
            for c in (16, 64, 256)
        ]
        # The executed work is identical; boundary placement shifts by at
        # most one chunk, so aggregate quantities stay close but are not
        # bit-identical (a coarser chunk overshoots boundaries further).
        assert len({r.stores for r in runs}) == 1
        assert len({r.instructions for r in runs}) == 1
        walls = [r.wall_ns for r in runs]
        assert max(walls) < min(walls) * 1.25
        sizes = [r.total_checkpoint_bytes for r in runs]
        assert max(sizes) <= min(sizes) * 3


class TestMemorySeeds:
    def test_seed_changes_logged_values_not_sizes(self, sim, prof):
        a = sim.run(
            SimulationOptions(
                label="s1", scheme="global", num_checkpoints=6,
                baseline=prof, memory_seed=1,
            )
        )
        b = sim.run(
            SimulationOptions(
                label="s2", scheme="global", num_checkpoints=6,
                baseline=prof, memory_seed=2,
            )
        )
        assert a.total_checkpoint_bytes == b.total_checkpoint_bytes
        ra = a.checkpoint_store.checkpoints[-1].log.records
        rb = b.checkpoint_store.checkpoints[-1].log.records
        if ra and rb:
            assert [r.address for r in ra] == [r.address for r in rb]


class TestThresholdEffect:
    def test_zero_coverage_threshold_behaves_like_plain(self, sim, prof):
        # tiny_programs chains have depth 4 => slice length 5; threshold 2
        # embeds nothing, so the ACR run logs exactly like the baseline.
        plain = sim.run(
            SimulationOptions(
                label="p", scheme="global", num_checkpoints=6, baseline=prof
            )
        )
        acr0 = sim.run(
            SimulationOptions(
                label="a0", scheme="global", acr=True,
                slice_policy=ThresholdPolicy(2),
                num_checkpoints=6, baseline=prof,
            )
        )
        assert acr0.omissions == 0
        assert acr0.total_checkpoint_bytes == plain.total_checkpoint_bytes


class TestDetectionLatency:
    def test_zero_latency_never_skips_checkpoints(self, sim, prof):
        run = sim.run(
            SimulationOptions(
                label="z", scheme="global", num_checkpoints=6,
                baseline=prof, errors=UniformErrors(2),
                error_model=ErrorModel(0.0),
            )
        )
        assert all(not r.skipped_corrupted for r in run.recoveries)

    def test_long_latency_can_skip_a_checkpoint(self, sim, prof):
        run = sim.run(
            SimulationOptions(
                label="l", scheme="global", num_checkpoints=6,
                baseline=prof, errors=UniformErrors(3),
                error_model=ErrorModel(0.9),
            )
        )
        # With latency == period, an error just before a boundary is
        # detected after it: that checkpoint is suspect (Fig. 2).
        assert any(r.skipped_corrupted for r in run.recoveries)

    def test_skipping_rolls_back_further(self, sim, prof):
        short = sim.run(
            SimulationOptions(
                label="s", scheme="global", num_checkpoints=6,
                baseline=prof, errors=UniformErrors(1),
                error_model=ErrorModel(0.0),
            )
        )
        long = sim.run(
            SimulationOptions(
                label="g", scheme="global", num_checkpoints=6,
                baseline=prof, errors=UniformErrors(1),
                error_model=ErrorModel(0.9),
            )
        )
        assert (
            long.recoveries[0].safe_checkpoint
            <= short.recoveries[0].safe_checkpoint
        )
        assert long.recoveries[0].waste_ns >= short.recoveries[0].waste_ns


class TestSchemeNoneIgnoresErrors:
    def test_baseline_run_has_no_recoveries(self, sim):
        run = sim.run(SimulationOptions(label="b", scheme="none"))
        assert run.recovery_count == 0
        assert run.checkpoint_count == 0
