"""Set-associative write-back LRU cache model.

Functional-timing hybrid: the cache tracks tags, LRU order and dirty bits
(so checkpoint-time dirty-line flushes are exact), but holds no data —
values live in the shared :class:`~repro.isa.interpreter.MemoryImage`.

LRU is implemented with per-set ``dict`` insertion order (Python dicts are
ordered): a hit re-inserts the tag, an eviction pops the oldest entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.config import CacheConfig

__all__ = ["AccessResult", "SetAssociativeCache"]


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one cache access.

    ``victim_line`` / ``victim_dirty`` describe the line evicted to make
    room on a miss (``None`` when no eviction happened).
    """

    hit: bool
    victim_line: Optional[int]
    victim_dirty: bool


class SetAssociativeCache:
    """One cache level; addresses are *line* addresses (byte addr // line)."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(config.num_sets)]
        self._num_sets = config.num_sets
        self._ways = config.ways
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def _set_for(self, line: int) -> Dict[int, bool]:
        return self._sets[line % self._num_sets]

    def access(self, line: int, is_write: bool) -> AccessResult:
        """Access ``line``; allocate on miss (write-allocate policy)."""
        cset = self._set_for(line)
        if line in cset:
            dirty = cset.pop(line) or is_write
            cset[line] = dirty  # re-insert: most recently used
            self.hits += 1
            return AccessResult(True, None, False)

        self.misses += 1
        victim_line: Optional[int] = None
        victim_dirty = False
        if len(cset) >= self._ways:
            victim_line, victim_dirty = next(iter(cset.items()))
            del cset[victim_line]
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
        cset[line] = is_write
        return AccessResult(False, victim_line, victim_dirty)

    def internal_state(self):
        """``(sets, num_sets, ways)`` for engines that inline :meth:`access`.

        The returned set list is the live state: callers replicating the
        access protocol mutate it directly and bump the public counters
        themselves (the vector engine batches counter updates per
        segment).
        """
        return self._sets, self._num_sets, self._ways

    def contains(self, line: int) -> bool:
        """True when ``line`` is resident (does not touch LRU order)."""
        return line in self._set_for(line)

    def is_dirty(self, line: int) -> bool:
        """True when ``line`` is resident and dirty."""
        return self._set_for(line).get(line, False)

    def invalidate(self, line: int) -> bool:
        """Drop ``line``; returns True when the dropped copy was dirty."""
        cset = self._set_for(line)
        if line in cset:
            return cset.pop(line)
        return False

    def flush_dirty(self) -> List[int]:
        """Write back all dirty lines (checkpoint flush).

        Marks every dirty line clean and returns their line addresses; the
        lines stay resident (as in Rebound, clean copies remain cached).
        """
        flushed: List[int] = []
        for cset in self._sets:
            for line, dirty in cset.items():
                if dirty:
                    flushed.append(line)
                    cset[line] = False
        return flushed

    def dirty_line_count(self) -> int:
        """Number of currently dirty lines."""
        return sum(1 for cset in self._sets for d in cset.values() if d)

    def resident_lines(self) -> List[int]:
        """All resident line addresses (test helper)."""
        return [line for cset in self._sets for line in cset]

    @property
    def accesses(self) -> int:
        """Total accesses so far."""
        return self.hits + self.misses
