"""Extension: recomputation-aware checkpoint placement (paper future work).

§V-D1/V-D3 suggest skewing checkpoint boundaries toward recomputation-rich
execution points instead of placing them uniformly.  This bench profiles
``bt`` (strong temporal variation) on a fine grid, derives an aware
placement, and compares the checkpoint-data volume and time overhead
against the uniform default at the same checkpoint count.
"""

from _bench_lib import BENCH_REPS, BENCH_SCALE, run_once

from repro.arch.config import MachineConfig
from repro.compiler.policy import ThresholdPolicy
from repro.experiments.placement import aware_boundaries
from repro.sim.results import time_overhead
from repro.sim.simulator import SimulationOptions, Simulator
from repro.util.tables import format_table
from repro.workloads.registry import get_workload

N_CHECKPOINTS = 25
PROFILE_GRID = 75


def sweep():
    spec = get_workload("bt")
    cfg = MachineConfig(num_cores=8)
    programs = spec.build_programs(8, region_scale=BENCH_SCALE, reps=BENCH_REPS)
    sim = Simulator(programs, cfg)
    base = sim.run_baseline()
    prof = base.baseline_profile()
    policy = ThresholdPolicy(10)

    profile_run = sim.run(
        SimulationOptions(
            label="profile",
            scheme="global",
            acr=True,
            slice_policy=policy,
            num_checkpoints=PROFILE_GRID,
            baseline=prof,
        )
    )
    plan = aware_boundaries(profile_run, N_CHECKPOINTS, max_stretch=1.6)

    uniform = sim.run(
        SimulationOptions(
            label="uniform",
            scheme="global",
            acr=True,
            slice_policy=policy,
            num_checkpoints=N_CHECKPOINTS,
            baseline=prof,
        )
    )
    aware = sim.run(
        SimulationOptions(
            label="aware",
            scheme="global",
            acr=True,
            slice_policy=policy,
            num_checkpoints=N_CHECKPOINTS,
            baseline=prof,
            boundaries=plan.boundaries,
        )
    )
    rows = []
    data = {}
    for run in (uniform, aware):
        red = 1 - run.total_checkpoint_bytes / run.total_baseline_checkpoint_bytes
        ovh = time_overhead(run, base)
        data[run.label] = {"reduction": red, "overhead": ovh,
                           "logged": run.total_checkpoint_bytes}
        rows.append(
            [run.label, run.checkpoint_count, run.total_checkpoint_bytes,
             round(100 * red, 2), round(100 * ovh, 2)]
        )
    table = format_table(
        ["placement", "ckpts", "logged bytes", "omitted %", "time ovh %"],
        rows,
        title="Extension: recomputation-aware checkpoint placement (bt)",
    )
    return table, data


def test_placement(benchmark, emit):
    table, data = run_once(benchmark, sweep)
    emit("extension_placement", table)
    # Aware placement must not log more checkpoint data than uniform, and
    # should improve the omitted fraction.
    assert data["aware"]["reduction"] >= data["uniform"]["reduction"] - 0.02
    assert data["aware"]["logged"] <= data["uniform"]["logged"] * 1.05
