"""Tests for repro.isa.builder (KernelBuilder and chain_kernel)."""

import pytest

from repro.isa.builder import KernelBuilder, chain_kernel
from repro.isa.instructions import (
    AddressPattern,
    AluInstr,
    LoadInstr,
    MoviInstr,
    StoreInstr,
)
from repro.isa.opcodes import Opcode

STORE = AddressPattern(0, 1, 16)
INPUT = AddressPattern(4096, 1, 16)


class TestKernelBuilder:
    def test_register_allocation_monotonic(self):
        b = KernelBuilder("k")
        regs = [b.movi(i) for i in range(5)]
        assert regs == [0, 1, 2, 3, 4]

    def test_alu_into_reuses_register(self):
        b = KernelBuilder("k")
        a = b.movi(1)
        b.alu_into(Opcode.ADD, a, a, a)
        k_body = b._body
        assert isinstance(k_body[-1], AluInstr)
        assert k_body[-1].dst == a


class TestChainKernel:
    def test_depth_controls_alu_count(self):
        for depth in (1, 5, 20):
            k = chain_kernel("k", STORE, [INPUT], depth, 4)
            n_alu = sum(1 for i in k.body if isinstance(i, AluInstr))
            assert n_alu == depth

    def test_has_single_store(self):
        k = chain_kernel("k", STORE, [INPUT], 3, 4)
        assert sum(1 for i in k.body if isinstance(i, StoreInstr)) == 1

    def test_salt_movi_present_when_depth_positive(self):
        k = chain_kernel("k", STORE, [INPUT], 3, 4)
        assert any(isinstance(i, MoviInstr) for i in k.body)

    def test_copy_store_body(self):
        k = chain_kernel("k", STORE, [INPUT], 0, 4, copy_store=True)
        kinds = [type(i) for i in k.body]
        assert kinds == [LoadInstr, StoreInstr]

    def test_copy_store_requires_input(self):
        with pytest.raises(ValueError):
            chain_kernel("k", STORE, [], 0, 4, copy_store=True)

    def test_accumulate_and_copy_exclusive(self):
        with pytest.raises(ValueError):
            chain_kernel("k", STORE, [INPUT], 1, 4, accumulate=True, copy_store=True)

    def test_no_inputs_pure_immediate_chain(self):
        k = chain_kernel("k", STORE, [], 4, 4, salt=9)
        assert not any(isinstance(i, LoadInstr) for i in k.body)
        assert any(isinstance(i, StoreInstr) for i in k.body)

    def test_extra_stores(self):
        extra = AddressPattern(8192, 1, 16)
        k = chain_kernel("k", STORE, [INPUT], 2, 4, extra_stores=[extra])
        stores = [i for i in k.body if isinstance(i, StoreInstr)]
        assert len(stores) == 2
        assert stores[1].pattern.base == 8192

    def test_multiple_inputs_used(self):
        inputs = [INPUT, AddressPattern(8192, 1, 16)]
        k = chain_kernel("k", STORE, inputs, 6, 4)
        loads = [i for i in k.body if isinstance(i, LoadInstr)]
        assert len(loads) == 2

    def test_ghost_alu_passthrough(self):
        k = chain_kernel("k", STORE, [INPUT], 2, 4, ghost_alu=33)
        assert k.ghost_alu == 33

    def test_different_salts_different_values(self):
        from repro.isa.interpreter import Interpreter, MemoryImage
        from repro.isa.program import Program

        values = []
        for salt in (1, 2):
            mem = MemoryImage(0)
            p = Program([chain_kernel("k", STORE, [INPUT], 3, 1, salt=salt)])
            got = []
            Interpreter(p, mem, on_store=lambda e: got.append(e.new_value)).run_to_completion()
            values.append(got[0])
        assert values[0] != values[1]
