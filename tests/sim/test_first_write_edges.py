"""First-write protocol edge cases: plans, intervals, AddrMap pressure.

The checkpoint log records each word's *first* write per interval; ACR's
AddrMap decides which of those records can be omitted.  These tests pin
the edges of that protocol:

* :meth:`KernelPlan.first_store_occurrence` — the vectorized first-touch
  reduction the plans expose (region wrap, stride-0 streams, multiple
  stores per iteration, same-line/different-word writes);
* interval boundaries — log bits clear at every checkpoint, so the same
  address is "first" again in each interval, exactly once;
* capacity pressure — tiny AddrMap/OperandBuffer capacities drive the
  handler's reject/invalidate paths, which must stay bit-identical
  between the interpreter and the vector engine's inlined fast path.
"""

from __future__ import annotations

import pytest

from repro.arch.config import MachineConfig
from repro.experiments.configs import ConfigRequest, make_options
from repro.isa.builder import chain_kernel
from repro.isa.instructions import LINE_BYTES, WORD_BYTES, AddressPattern
from repro.isa.program import Program
from repro.sim.simulator import Simulator
from repro.sim.vector.plans import plans_for


def _plan(store_pattern, trip, extra_stores=None, base=1 << 24):
    kernel = chain_kernel(
        "k",
        store_pattern,
        [AddressPattern(base + (1 << 20), 1, 64)],
        chain_depth=2,
        trip_count=trip,
        extra_stores=extra_stores,
    )
    program = Program([kernel], 0)
    return plans_for(program, 0, LINE_BYTES).plan(0)


class TestFirstStoreOccurrence:
    def test_region_wrap_retouches_are_not_first(self):
        # Words 0..3 twice over: only the first visit of each is "first".
        plan = _plan(AddressPattern(0, 1, 4), trip=8)
        assert plan.first_store_occurrence() == [True] * 4 + [False] * 4

    def test_stride_zero_single_word(self):
        plan = _plan(AddressPattern(0, 0, 8), trip=6)
        assert plan.first_store_occurrence() == [True] + [False] * 5

    def test_negative_stride_wraps_backwards(self):
        # offset 0, stride -1, length 4 -> words 0, 3, 2, 1, 0, 3, ...
        plan = _plan(AddressPattern(0, -1, 4), trip=6)
        assert plan.first_store_occurrence() == [True] * 4 + [False] * 2

    def test_two_stores_per_iteration_same_address(self):
        # The extra store duplicates the main stream: within an iteration
        # the second write to a word is never first.
        pattern = AddressPattern(0, 1, 4)
        plan = _plan(pattern, trip=4, extra_stores=[pattern])
        assert plan.first_store_occurrence() == [True, False] * 4

    def test_same_line_different_words_each_first(self):
        # Eight words share one cache line; first-write granularity is
        # the word, so every one of them is a first touch.
        plan = _plan(AddressPattern(0, 1, 8), trip=8)
        assert plan.first_store_occurrence() == [True] * 8
        assert len(set(plan.lines[p] for p, f in enumerate(plan.store_flags) if f)) \
            <= (8 * WORD_BYTES + LINE_BYTES - 1) // LINE_BYTES

    def test_no_stores_empty(self):
        from repro.isa.builder import KernelBuilder

        b = KernelBuilder("pure_loads")
        b.load(AddressPattern(0, 1, 8))
        program = Program([b.build(4)], 0)
        plan = plans_for(program, 0, LINE_BYTES).plan(0)
        assert plan.first_store_occurrence() == []

    def test_single_trip_is_always_first(self):
        # One iteration cannot retouch anything, whatever the stride.
        for stride in (1, 0, -1):
            plan = _plan(AddressPattern(0, stride, 8), trip=1)
            assert plan.first_store_occurrence() == [True]

    def test_single_trip_duplicate_store_not_first(self):
        # Even with trip 1 the *second* store of the iteration can
        # retouch the word the first one just wrote.
        pattern = AddressPattern(0, 0, 8)
        plan = _plan(pattern, trip=1, extra_stores=[pattern])
        assert plan.first_store_occurrence() == [True, False]



def _stride_one_programs(num_cores=2, reps=6, words=48):
    """Each rep rewrites the same ``words``-word region once."""
    programs = []
    for t in range(num_cores):
        base = (t + 1) << 24
        kernels = [
            chain_kernel(
                f"k{rep}",
                AddressPattern(base, 1, words),
                [AddressPattern(base + (1 << 20), 1, words, offset=rep)],
                chain_depth=3,
                trip_count=words,
                salt=t * 100 + rep,
            )
            for rep in range(reps)
        ]
        programs.append(Program(kernels, t))
    return programs


class TestIntervalBoundaries:
    """Log bits clear at checkpoints: firstness is per interval."""

    @pytest.fixture(scope="class")
    def run(self):
        num_cores, words = 2, 48
        sim = Simulator(_stride_one_programs(num_cores, 6, words), MachineConfig(num_cores=num_cores))
        base = sim.run_baseline()
        result = sim.run(
            make_options(
                ConfigRequest("Ckpt_NE", num_checkpoints=3),
                base.baseline_profile(),
            )
        )
        return result, num_cores, words

    def test_each_interval_logs_footprint_once(self, run):
        result, num_cores, words = run
        # Every interval rewrites each region fully at least once; the
        # log must hold exactly one record per word per interval — a
        # retouch before the boundary adds nothing, the first touch
        # after it always logs again.
        for iv in result.intervals:
            assert iv.logged_records == num_cores * words

    def test_readdressed_words_relog_after_boundary(self, run):
        result, num_cores, words = run
        total = sum(iv.logged_records for iv in result.intervals)
        assert total == len(result.intervals) * num_cores * words


class TestCapacityPressureEquivalence:
    """Tiny ACR structures: reject/invalidate paths on both engines."""

    REQUEST = ConfigRequest("ReCkpt_NE", num_checkpoints=3)

    def _both(self, machine):
        sim = Simulator(_stride_one_programs(), machine)
        base = sim.run_baseline()
        a = sim.run(make_options(self.REQUEST, base.baseline_profile(), engine="interp"))
        b = sim.run(make_options(self.REQUEST, base.baseline_profile(), engine="vector"))
        assert a.to_dict() == b.to_dict()
        return a

    @pytest.fixture(scope="class")
    def roomy(self):
        return self._both(MachineConfig(num_cores=2))

    def test_default_capacity_no_rejections(self, roomy):
        assert roomy.addrmap_rejections == 0
        assert roomy.omissions > 0

    def test_addrmap_full_rejects_bit_identically(self, roomy):
        run = self._both(MachineConfig(num_cores=2, addrmap_capacity=8))
        # The pressure must actually bite, or this test pins nothing.
        assert run.addrmap_rejections > 0
        assert run.omissions < roomy.omissions

    def test_operand_buffer_full_invalidates_bit_identically(self, roomy):
        run = self._both(
            MachineConfig(num_cores=2, operand_buffer_capacity=8)
        )
        # Reserve failures invalidate the would-be entries, so omission
        # coverage collapses relative to the roomy machine.
        assert run.omissions < roomy.omissions

    def test_both_full_bit_identically(self, roomy):
        run = self._both(
            MachineConfig(
                num_cores=2, addrmap_capacity=8, operand_buffer_capacity=8
            )
        )
        assert run.omissions < roomy.omissions


def _edge_pattern_programs(num_cores=2):
    """Kernels hitting the plan.overlap edges: wraparound footprints,
    stride-0 streams, negative strides, and single-trip segments."""
    programs = []
    for t in range(num_cores):
        base = (t + 1) << 24
        edges = [
            # Wraparound: the load window wraps past the region end and
            # back over words the store stream already touched.
            ("wrap", AddressPattern(base, 1, 8),
             AddressPattern(base, 1, 8, offset=6), 8),
            # Stride-0: every iteration rereads one fixed word.
            ("stride0", AddressPattern(base + 256, 1, 8),
             AddressPattern(base + 256, 0, 8, offset=3), 6),
            # Negative stride: load walks backwards through the region.
            ("negstride", AddressPattern(base + 512, 1, 4),
             AddressPattern(base + 512, -1, 4, offset=2), 4),
            # Single trip: one iteration, trivially overlap-free.
            ("singletrip", AddressPattern(base + 768, 1, 8),
             AddressPattern(base + 768 + (1 << 12), 1, 8), 1),
        ]
        kernels = [
            chain_kernel(
                name,
                store,
                [load],
                chain_depth=2,
                trip_count=trip,
                salt=t * 100 + i,
            )
            for i, (name, store, load, trip) in enumerate(edges)
        ]
        programs.append(Program(kernels, t))
    return programs


class TestEdgePatternEquivalence:
    """The overlap edges run bit-identically on both engines.

    These kernels force the vector engine down both sides of its
    replay/fallback split (the wrap and stride-0 kernels overlap, the
    single-trip one does not) — the result must not depend on which
    path executed."""

    @pytest.mark.parametrize(
        "request_", [ConfigRequest("Ckpt_NE", num_checkpoints=3),
                     ConfigRequest("ReCkpt_E", num_checkpoints=3)],
        ids=["Ckpt_NE", "ReCkpt_E"],
    )
    def test_engines_bit_identical(self, request_):
        sim = Simulator(_edge_pattern_programs(), MachineConfig(num_cores=2))
        base = sim.run_baseline()
        a = sim.run(make_options(request_, base.baseline_profile(), engine="interp"))
        b = sim.run(make_options(request_, base.baseline_profile(), engine="vector"))
        assert a.to_dict() == b.to_dict()

    def test_certifier_agrees_with_plans(self):
        from repro.verify.absint.certify import summarize_kernel

        for program in _edge_pattern_programs():
            for k, kernel in enumerate(program.kernels):
                plan = plans_for(program, 0, LINE_BYTES).plan(k)
                assert summarize_kernel(k, kernel).overlap == plan.overlap
