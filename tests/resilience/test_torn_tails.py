"""Torn tails under crashed campaigns: journal + telemetry snapshots.

A SIGKILL can land mid-``write`` on either append-only stream beside the
result cache.  The contracts pinned here:

* a half-written **journal** record costs exactly one resumed task — the
  committed prefix loads (warning-free for a clean tear, a warning for
  interior corruption) and the resumed campaign reports bit-identically;
* a half-written **telemetry snapshot** never poisons replay — the
  committed prefix renders, and the next campaign appends past it.
"""

import json

import pytest

from repro.inject.campaign import build_trials, run_campaign
from repro.experiments.runner import ExperimentRunner
from repro.obs.telemetry.aggregate import CampaignTelemetry
from repro.obs.telemetry.monitor import replay
from repro.obs.telemetry.snapshots import read_snapshots
from repro.resilience.policy import ResiliencePolicy


def _specs(trials=2):
    return build_trials(
        ["cg"], trials=trials, num_cores=2, steps_per_interval=2,
        iters_per_step=4, region_scale=0.05, reps=2,
    )


def _runner(**kw):
    kw.setdefault("num_cores", 2)
    kw.setdefault("region_scale", 0.05)
    kw.setdefault("reps", 2)
    kw.setdefault(
        "resilience",
        ResiliencePolicy(backoff_base_s=0.01, backoff_max_s=0.05),
    )
    return ExperimentRunner(**kw)


def _report_json(report):
    return json.dumps(report.to_json_dict(), sort_keys=True)


def _truncate_mid_record(path):
    """Simulate a crash mid-append: keep the committed prefix plus the
    first half of the final record (no trailing newline)."""
    raw = path.read_text(encoding="utf-8")
    lines = raw.splitlines(keepends=True)
    assert len(lines) >= 2, "need a committed prefix to tear after"
    last = lines[-1]
    path.write_text(
        "".join(lines[:-1]) + last[: len(last) // 2].rstrip("\n"),
        encoding="utf-8",
    )
    return len(lines) - 1


def test_torn_journal_tail_resumes_bit_identically(tmp_path):
    specs = _specs()
    undisturbed = run_campaign(_runner(jobs=1), _specs())

    cache = tmp_path / "cache"
    first = _runner(jobs=1, cache_dir=cache)
    run_campaign(first, specs)
    journal_path = first.cache.journal_path()
    committed = _truncate_mid_record(journal_path)

    second = _runner(jobs=1, cache_dir=cache, resume=True)
    resumed = run_campaign(second, specs)
    # The torn record's task was served from the result cache (keyed
    # independently of the journal); the committed prefix was honoured.
    assert second.progress.resumed == committed == len(specs) - 1
    assert second.progress.simulated == 0
    assert _report_json(resumed) == _report_json(undisturbed)
    # The journal keeps exactly the committed prefix: cache hits are not
    # re-journaled (only executions are), and the tear cost one record.
    assert len(second.journal.load()) == committed


def test_corrupt_interior_journal_record_resumes_with_warning(tmp_path):
    specs = _specs()
    undisturbed = run_campaign(_runner(jobs=1), _specs())

    cache = tmp_path / "cache"
    first = _runner(jobs=1, cache_dir=cache)
    run_campaign(first, specs)
    journal_path = first.cache.journal_path()
    lines = journal_path.read_text(encoding="utf-8").splitlines(keepends=True)
    lines[0] = "}} definitely not json {{\n"
    journal_path.write_text("".join(lines), encoding="utf-8")

    # The journal loads (and warns) at construction time under resume.
    with pytest.warns(UserWarning, match="undecodable"):
        second = _runner(jobs=1, cache_dir=cache, resume=True)
    resumed = run_campaign(second, specs)
    assert second.progress.resumed == len(specs) - 1
    assert _report_json(resumed) == _report_json(undisturbed)


def test_torn_snapshot_tail_replays_and_appends_past(tmp_path):
    cache = tmp_path / "cache"
    first = _runner(jobs=1, cache_dir=cache)
    telemetry = CampaignTelemetry(
        progress=first.progress,
        snapshot_path=first.cache.telemetry_path(),
        snapshot_interval_s=0.0,
    )
    first.telemetry = telemetry
    run_campaign(first, _specs())
    telemetry.close()
    path = first.cache.telemetry_path()
    committed = _truncate_mid_record(path)

    # The committed prefix still loads and replays, tear ignored.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        docs = read_snapshots(path)
    assert len(docs) == committed
    assert replay(path, stream=_Sink()) == 0

    # A follow-up campaign appends past the tear; its own records load.
    second = _runner(jobs=1, cache_dir=cache, resume=True)
    second_tele = CampaignTelemetry(
        progress=second.progress,
        snapshot_path=second.cache.telemetry_path(),
        snapshot_interval_s=0.0,
    )
    second.telemetry = second_tele
    run_campaign(second, _specs())
    final = second_tele.close()
    # The tear became a skippable corrupt interior line (the follow-up
    # campaign repaired the tail before appending) — skipped with a
    # warning by contract, so every clean record on either side loads.
    with pytest.warns(UserWarning, match="undecodable"):
        docs = read_snapshots(path)
    assert len(docs) >= committed + second_tele.snapshots_written - 1
    assert docs[-1]["frames"] == final["frames"]


class _Sink:
    """Minimal text stream for replay output."""

    def __init__(self):
        self.text = ""

    def write(self, chunk):
        self.text += chunk

    def flush(self):
        pass
