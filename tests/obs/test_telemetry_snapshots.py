"""Snapshot stream durability: rate limit, torn tails, schema drift."""

import json
import warnings

import pytest

from repro.obs.telemetry.snapshots import (
    SNAPSHOT_KIND,
    TELEMETRY_SCHEMA_VERSION,
    SnapshotWriter,
    read_snapshots,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def _snap(n=0):
    return {"ts_s": float(n), "frames": n}


class TestSnapshotWriter:
    def test_write_stamps_version_and_kind(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        writer = SnapshotWriter(path)
        writer.write(_snap(1))
        [doc] = read_snapshots(path)
        assert doc["v"] == TELEMETRY_SCHEMA_VERSION
        assert doc["kind"] == SNAPSHOT_KIND
        assert doc["frames"] == 1
        assert writer.written == 1

    def test_maybe_write_rate_limits_on_the_injected_clock(self, tmp_path):
        clock = FakeClock()
        writer = SnapshotWriter(tmp_path / "t.jsonl", min_interval_s=0.5,
                                clock=clock)
        assert writer.maybe_write(lambda: _snap(1)) is True
        clock.t = 0.2
        assert writer.maybe_write(lambda: _snap(2)) is False
        clock.t = 0.6
        assert writer.maybe_write(lambda: _snap(3)) is True
        assert [d["frames"] for d in read_snapshots(writer.path)] == [1, 3]

    def test_maybe_write_is_lazy_when_not_due(self, tmp_path):
        clock = FakeClock()
        writer = SnapshotWriter(tmp_path / "t.jsonl", min_interval_s=10.0,
                                clock=clock)
        writer.write(_snap(0))

        def explode():
            raise AssertionError("snapshot built although not due")

        assert writer.maybe_write(explode) is False

    def test_writer_creates_parent_directories(self, tmp_path):
        writer = SnapshotWriter(tmp_path / "deep" / "down" / "t.jsonl")
        writer.write(_snap())
        assert writer.path.exists()


class TestReadSnapshots:
    def test_missing_file_is_empty(self, tmp_path):
        assert read_snapshots(tmp_path / "absent.jsonl") == []

    def test_torn_final_line_is_ignored_silently(self, tmp_path):
        writer = SnapshotWriter(tmp_path / "t.jsonl")
        writer.write(_snap(1))
        writer.write(_snap(2))
        with open(writer.path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "kind": "telemetry-snapshot", "fra')
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            docs = read_snapshots(writer.path)
        assert [d["frames"] for d in docs] == [1, 2]

    def test_corrupt_interior_line_warns_and_skips(self, tmp_path):
        writer = SnapshotWriter(tmp_path / "t.jsonl")
        writer.write(_snap(1))
        with open(writer.path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
        writer.write(_snap(2))
        with pytest.warns(UserWarning, match="undecodable"):
            docs = read_snapshots(writer.path)
        assert [d["frames"] for d in docs] == [1, 2]

    def test_schema_version_mismatch_discards_whole_stream(self, tmp_path):
        writer = SnapshotWriter(tmp_path / "t.jsonl")
        writer.write(_snap(1))
        doc = {"v": TELEMETRY_SCHEMA_VERSION + 1, "kind": SNAPSHOT_KIND}
        with open(writer.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(doc) + "\n")
        with pytest.warns(UserWarning, match="schema version"):
            assert read_snapshots(writer.path) == []

    def test_foreign_record_kind_warns_and_skips(self, tmp_path):
        writer = SnapshotWriter(tmp_path / "t.jsonl")
        doc = {"v": TELEMETRY_SCHEMA_VERSION, "kind": "something-else"}
        with open(writer.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(doc) + "\n")
        writer.write(_snap(1))
        with pytest.warns(UserWarning, match="unexpected record kind"):
            docs = read_snapshots(writer.path)
        assert [d["frames"] for d in docs] == [1]
