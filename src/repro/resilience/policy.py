"""Retry/timeout/backoff policy with deterministic, seeded jitter.

The policy is plain data: every knob the supervised pool consults lives
here, so an :class:`~repro.experiments.runner.ExperimentRunner` (or a
test) can describe its fault-handling in one value.  Backoff is the one
computed piece — exponential in the attempt number, capped, and
jittered by a hash of ``(seed, task key, attempt)`` rather than by a
live RNG.  Two properties follow, both pinned by tests:

* **determinism** — rerunning a campaign schedules byte-identical
  retry delays (the harness analogue of the paper's deterministic
  re-execution during recovery);
* **decorrelation** — distinct tasks failing together still spread
  their retries out, because the jitter is keyed by the task.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.util.validation import check_in_range, check_positive

__all__ = ["ResiliencePolicy"]


def _unit_hash(seed: int, key: str, attempt: int) -> float:
    """A deterministic draw in ``[0, 1)`` from (seed, key, attempt)."""
    digest = hashlib.sha256(
        f"{seed}:{key}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything the supervised pool needs to decide *when to give up*.

    ``max_retries`` bounds re-executions (a task runs at most
    ``1 + max_retries`` times); ``timeout_s`` is the per-attempt
    wall-clock budget (``None`` = no watchdog); the ``backoff_*`` family
    shapes the delay between attempts; ``pool_failure_threshold`` is the
    circuit breaker — after that many *consecutive* pool-level failures
    (worker deaths or timeouts, never ordinary task exceptions) the
    supervisor degrades to serial in-process execution.  The ``lock_*``
    pair governs the best-effort per-cache-key lockfiles.
    """

    max_retries: int = 2
    timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter_fraction: float = 0.25
    seed: int = 0
    pool_failure_threshold: int = 3
    lock_wait_s: float = 10.0
    lock_stale_s: float = 600.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout_s is not None:
            check_positive("timeout_s", self.timeout_s)
        check_positive("backoff_base_s", self.backoff_base_s)
        check_positive("backoff_factor", self.backoff_factor)
        check_positive("backoff_max_s", self.backoff_max_s)
        check_in_range("jitter_fraction", self.jitter_fraction, 0.0, 1.0)
        check_positive("pool_failure_threshold", self.pool_failure_threshold)
        if self.lock_wait_s < 0:
            raise ValueError(
                f"lock_wait_s must be >= 0, got {self.lock_wait_s}"
            )
        check_positive("lock_stale_s", self.lock_stale_s)

    @property
    def max_attempts(self) -> int:
        """Total executions a task may consume (first try + retries)."""
        return 1 + self.max_retries

    def backoff_s(self, key: str, attempt: int) -> float:
        """Seconds to wait after ``attempt`` (1-based) of task ``key``.

        ``base * factor**(attempt-1)``, capped at ``backoff_max_s``,
        then jittered multiplicatively into
        ``[1 - jitter, 1 + jitter)`` by the seeded hash — a pure
        function of ``(seed, key, attempt)``.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        unit = _unit_hash(self.seed, key, attempt)
        return raw * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))

    def schedule(self, key: str) -> list[float]:
        """The full deterministic backoff schedule of a task (one delay
        per possible failed attempt) — what a rerun would reproduce."""
        return [
            self.backoff_s(key, attempt)
            for attempt in range(1, self.max_attempts)
        ]
