"""Unit constants and conversions used across the timing and energy models.

The simulator keeps time internally in *nanoseconds* (floats) and energy in
*picojoules*; these helpers document that convention and centralise the
conversions so that no module hand-rolls its own constants.
"""

from __future__ import annotations

__all__ = [
    "GHZ",
    "KIB",
    "MIB",
    "NANOSECONDS_PER_SECOND",
    "PICOJOULE",
    "NANOJOULE",
    "bytes_per_second",
    "cycles_from_ns",
    "ns_from_cycles",
    "seconds_from_ns",
]

#: One gigahertz, in hertz.
GHZ = 1e9

#: Binary kilo/mega bytes.
KIB = 1024
MIB = 1024 * 1024

#: Nanoseconds per second.
NANOSECONDS_PER_SECOND = 1e9

#: Energy base units (expressed in joules).
PICOJOULE = 1e-12
NANOJOULE = 1e-9


def cycles_from_ns(ns: float, freq_hz: float) -> float:
    """Convert a duration in nanoseconds to clock cycles at ``freq_hz``."""
    return ns * 1e-9 * freq_hz


def ns_from_cycles(cycles: float, freq_hz: float) -> float:
    """Convert a cycle count at ``freq_hz`` to nanoseconds."""
    return cycles / freq_hz * NANOSECONDS_PER_SECOND


def seconds_from_ns(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NANOSECONDS_PER_SECOND


def bytes_per_second(gb_per_s: float) -> float:
    """Convert a bandwidth quoted in GB/s (decimal) to bytes/second."""
    return gb_per_s * 1e9
