"""Tests for the CLI (small scales, captured output)."""

import pytest

from repro.cli import build_parser, main

SMALL = ["--scale", "0.1", "--cores", "2", "--reps", "10"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope", "Ckpt_NE"])

    def test_nockpt_not_runnable(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bt", "NoCkpt"])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "bt", "ReCkpt_E", "--checkpoints", "5"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "ReCkpt_E" in out
        assert "TOTAL overhead" in out
        assert "recoveries: 1" in out
        assert "vs NoCkpt" in out

    def test_compare(self, capsys):
        assert main(["compare", "is"] + SMALL) == 0
        out = capsys.readouterr().out
        for name in ("Ckpt_NE", "ReCkpt_E_Loc"):
            assert name in out

    def test_slices(self, capsys):
        assert main(["slices", "mg", "--threshold", "30"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "slice-length histogram" in out

    def test_baselines(self, capsys):
        assert main(["baselines", "bt", "--every-k", "3"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "full snapshots would" in out
        assert "level-2 drain" in out
