"""Tests for repro.arch.hierarchy."""

import pytest

from repro.arch.config import MachineConfig
from repro.arch.hierarchy import CoreCacheHierarchy


@pytest.fixture
def hier():
    return CoreCacheHierarchy(MachineConfig(num_cores=4))


class TestAccessPath:
    def test_cold_miss_goes_to_memory(self, hier):
        cfg = hier.config
        acc = hier.access(0, False)
        assert acc.memory_access
        assert acc.latency_ns == pytest.approx(
            cfg.l1d.latency_ns + cfg.l2.latency_ns + cfg.mem_latency_ns
        )
        assert hier.memory_accesses == 1

    def test_l1_hit_after_fill(self, hier):
        hier.access(0, False)
        acc = hier.access(0, False)
        assert acc.l1_hit
        assert acc.latency_ns == pytest.approx(hier.config.l1d.latency_ns)

    def test_l2_hit_after_l1_eviction(self, hier):
        cfg = hier.config
        # Fill one L1 set: lines mapping to set 0 of L1 (64 sets, 8 ways)
        l1_sets = cfg.l1d.num_sets
        for i in range(cfg.l1d.ways + 1):
            hier.access(i * l1_sets * cfg.line_bytes, False)
        # line 0 got evicted from L1 but lives in L2
        acc = hier.access(0, False)
        assert acc.l2_hit and not acc.l1_hit and not acc.memory_access

    def test_same_line_words_share_line(self, hier):
        hier.access(0, False)
        acc = hier.access(56, False)  # same 64B line
        assert acc.l1_hit

    def test_dirty_l1_victim_lands_in_l2(self, hier):
        cfg = hier.config
        l1_sets = cfg.l1d.num_sets
        hier.access(0, True)  # dirty in L1
        for i in range(1, cfg.l1d.ways + 1):
            hier.access(i * l1_sets * cfg.line_bytes, False)
        # line 0 evicted dirty from L1 -> moved into L2 (dirty there)
        assert hier.l2.is_dirty(0)


class TestFlush:
    def test_flush_counts_unique_lines(self, hier):
        hier.access(0, True)
        hier.access(64, True)
        hier.access(128, False)
        assert hier.flush_dirty_lines() == 2
        assert hier.dirty_line_count() == 0

    def test_flush_counts_line_dirty_in_both_levels_once(self, hier):
        cfg = hier.config
        l1_sets = cfg.l1d.num_sets
        hier.access(0, True)
        # Evict it (dirty) into L2, then re-dirty it in L1.
        for i in range(1, cfg.l1d.ways + 1):
            hier.access(i * l1_sets * cfg.line_bytes, True)
        hier.access(0, True)
        n = hier.dirty_line_count()
        flushed = hier.flush_dirty_lines()
        assert flushed == n

    def test_flush_then_write_redirties(self, hier):
        hier.access(0, True)
        hier.flush_dirty_lines()
        hier.access(0, True)
        assert hier.dirty_line_count() == 1
