"""Tests for repro.sim.simulator: options, clocks, checkpointing, errors."""

import pytest

from repro.errors.injection import UniformErrors
from repro.sim.results import energy_overhead, time_overhead
from repro.sim.simulator import SimulationOptions, Simulator

from tests.conftest import tiny_machine, tiny_programs


class TestOptionsValidation:
    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            SimulationOptions(scheme="magic")

    def test_ckpt_needs_baseline(self):
        with pytest.raises(ValueError, match="baseline"):
            SimulationOptions(scheme="global")

    def test_acr_needs_scheme(self):
        with pytest.raises(ValueError, match="scheme"):
            SimulationOptions(scheme="none", acr=True)

    def test_program_count_must_match_cores(self):
        with pytest.raises(ValueError):
            Simulator(tiny_programs(2), tiny_machine(4))


class TestBaselineRun(object):
    def test_no_checkpoints_no_overhead(self, small_baseline):
        assert small_baseline.checkpoint_count == 0
        assert small_baseline.recovery_count == 0
        assert small_baseline.overhead_ns == pytest.approx(0.0, abs=1e-6)
        assert small_baseline.wall_ns == pytest.approx(small_baseline.useful_ns)

    def test_counts_positive(self, small_baseline):
        assert small_baseline.instructions > 0
        assert small_baseline.loads > 0
        assert small_baseline.stores > 0
        assert small_baseline.l1d_accesses == (
            small_baseline.loads + small_baseline.stores
        )

    def test_energy_buckets(self, small_baseline):
        for bucket in ("core.alu", "core.ifetch", "mem.l1d", "static.leakage"):
            assert small_baseline.energy.get(bucket) > 0
        assert small_baseline.energy.get("ckpt.log") == 0.0

    def test_deterministic(self, small_config):
        a = Simulator(tiny_programs(4), small_config).run_baseline()
        b = Simulator(tiny_programs(4), small_config).run_baseline()
        assert a.wall_ns == b.wall_ns
        assert a.energy_pj == b.energy_pj
        assert a.instructions == b.instructions


class TestCheckpointedRun:
    def test_checkpoint_count(self, small_ckpt_run):
        assert small_ckpt_run.checkpoint_count == 6

    def test_overhead_positive(self, small_ckpt_run, small_baseline):
        assert small_ckpt_run.wall_ns > small_baseline.wall_ns
        assert time_overhead(small_ckpt_run, small_baseline) > 0
        assert energy_overhead(small_ckpt_run, small_baseline) > 0

    def test_useful_time_matches_baseline(self, small_ckpt_run, small_baseline):
        # The useful clock is scheme-independent.
        assert small_ckpt_run.useful_ns == pytest.approx(
            small_baseline.useful_ns, rel=0.02
        )

    def test_logged_data_positive(self, small_ckpt_run):
        assert small_ckpt_run.total_checkpoint_bytes > 0
        assert all(iv.omitted_records == 0 for iv in small_ckpt_run.intervals)

    def test_log_energy_charged(self, small_ckpt_run):
        for bucket in ("ckpt.log", "ckpt.flush", "ckpt.arch", "ckpt.barrier"):
            assert small_ckpt_run.energy.get(bucket) > 0

    def test_first_writes_bounded_by_footprint(self, small_ckpt_run):
        # Each thread writes a 64-word region; 4 threads -> <= 256 unique
        # addresses per interval (plus nothing else).
        for iv in small_ckpt_run.intervals:
            assert iv.logged_records <= 4 * 64


class TestAcrRun:
    def test_omissions_happen(self, small_acr_run):
        assert small_acr_run.omissions > 0
        total_omitted = sum(iv.omitted_records for iv in small_acr_run.intervals)
        assert total_omitted == small_acr_run.omissions

    def test_checkpoint_data_reduced(self, small_acr_run, small_ckpt_run):
        assert (
            small_acr_run.total_checkpoint_bytes
            < small_ckpt_run.total_checkpoint_bytes
        )

    def test_baseline_equivalent_matches_plain_run(
        self, small_acr_run, small_ckpt_run
    ):
        # omitted + logged == what the non-ACR run logged.
        assert (
            small_acr_run.total_baseline_checkpoint_bytes
            == small_ckpt_run.total_checkpoint_bytes
        )

    def test_first_interval_unreduced(self, small_acr_run):
        # Interval 0's old values are initial memory: never recomputable.
        assert small_acr_run.intervals[0].omitted_records == 0

    def test_later_intervals_fully_reduced(self, small_acr_run):
        # The tiny programs rewrite the same region every rep with chain
        # stores: once warm (cold misses front-load the first interval or
        # two), every first-write is omittable.
        warm = small_acr_run.intervals[2:]
        assert warm
        for iv in warm:
            assert iv.reduction > 0.9

    def test_acr_cheaper_than_plain_checkpointing(
        self, small_acr_run, small_ckpt_run, small_baseline
    ):
        assert time_overhead(small_acr_run, small_baseline) < time_overhead(
            small_ckpt_run, small_baseline
        )
        assert energy_overhead(small_acr_run, small_baseline) < energy_overhead(
            small_ckpt_run, small_baseline
        )

    def test_assoc_instructions_counted(self, small_acr_run):
        assert small_acr_run.assoc_ops > 0
        assert small_acr_run.energy.get("acr.assoc") > 0

    def test_compile_stats_attached(self, small_acr_run):
        assert small_acr_run.compile_stats is not None
        assert small_acr_run.compile_stats.sites_embedded > 0

    def test_recomputation_matches_ground_truth(self, small_acr_run):
        from repro.ckpt.recovery import RecoveryEngine

        store = small_acr_run.checkpoint_store
        retained = [c.log for c in store.checkpoints[-2:]] + [store.current_log]
        assert any(log.omitted for log in retained)
        assert RecoveryEngine.verify_recomputation(retained) == []


class TestErrorRuns:
    @pytest.fixture(scope="class")
    def error_run(self, small_simulator, small_baseline):
        return small_simulator.run(
            SimulationOptions(
                label="Ckpt_E",
                scheme="global",
                num_checkpoints=6,
                baseline=small_baseline.baseline_profile(),
                errors=UniformErrors(1),
            )
        )

    @pytest.fixture(scope="class")
    def acr_error_run(self, small_simulator, small_baseline):
        return small_simulator.run(
            SimulationOptions(
                label="ReCkpt_E",
                scheme="global",
                acr=True,
                num_checkpoints=6,
                baseline=small_baseline.baseline_profile(),
                errors=UniformErrors(1),
            )
        )

    def test_one_recovery(self, error_run):
        assert error_run.recovery_count == 1
        rec = error_run.recoveries[0]
        assert rec.waste_ns > 0
        assert rec.rollback_ns > 0
        assert rec.recompute_ns == 0
        assert rec.restored_records > 0

    def test_recovery_costlier_than_error_free(
        self, error_run, small_ckpt_run
    ):
        assert error_run.wall_ns > small_ckpt_run.wall_ns

    def test_acr_recovery_recomputes(self, acr_error_run):
        rec = acr_error_run.recoveries[0]
        assert rec.recomputed_values > 0
        assert rec.recompute_ns > 0
        assert acr_error_run.energy.get("rec.recompute") > 0

    def test_acr_restores_fewer_records(self, acr_error_run, error_run):
        assert (
            acr_error_run.recoveries[0].restored_records
            < error_run.recoveries[0].restored_records
        )

    def test_acr_still_wins_with_errors(
        self, acr_error_run, error_run, small_baseline
    ):
        assert time_overhead(acr_error_run, small_baseline) < time_overhead(
            error_run, small_baseline
        )

    def test_more_errors_more_overhead(self, small_simulator, small_baseline):
        prof = small_baseline.baseline_profile()
        runs = [
            small_simulator.run(
                SimulationOptions(
                    label=f"E{n}",
                    scheme="global",
                    num_checkpoints=6,
                    baseline=prof,
                    errors=UniformErrors(n),
                )
            )
            for n in (1, 3, 5)
        ]
        walls = [r.wall_ns for r in runs]
        assert walls == sorted(walls)
        assert [r.recovery_count for r in runs] == [1, 3, 5]

    def test_waste_energy_charged(self, error_run):
        assert error_run.energy.get("rec.waste") > 0


class TestLocalScheme:
    def test_local_cheaper_when_no_communication(
        self, small_simulator, small_baseline, small_ckpt_run
    ):
        # tiny_programs never share lines: every core is its own cluster.
        run = small_simulator.run(
            SimulationOptions(
                label="Ckpt_NE_Loc",
                scheme="local",
                num_checkpoints=6,
                baseline=small_baseline.baseline_profile(),
            )
        )
        assert all(iv.clusters == 4 for iv in run.intervals)
        assert run.wall_ns < small_ckpt_run.wall_ns

    def test_local_recovery_confined_to_cluster(
        self, small_simulator, small_baseline
    ):
        run = small_simulator.run(
            SimulationOptions(
                label="Ckpt_E_Loc",
                scheme="local",
                num_checkpoints=6,
                baseline=small_baseline.baseline_profile(),
                errors=UniformErrors(1),
            )
        )
        assert run.recoveries[0].participants == 1
