"""Best-effort per-key lockfiles for the shared result cache.

Two ``acr-repro`` invocations pointed at one ``--cache-dir`` can miss
on the same key simultaneously and both pay for the simulation.  A
:class:`KeyLock` makes the race cheap: the loser waits briefly for the
winner's entry instead of recomputing.  The guarantees are deliberately
*best-effort* — correctness never depends on the lock (cache writes are
atomic and idempotent; a duplicated simulation is waste, not a bug), so
every failure mode degrades to "simulate anyway":

* acquisition is ``O_CREAT | O_EXCL`` — atomic on every platform;
* a lock older than ``stale_s`` (by mtime) is presumed orphaned by a
  crashed owner and broken;
* waiting is bounded by ``wait_s``; on expiry the caller proceeds
  without ownership.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional, Union

__all__ = ["KeyLock"]


class KeyLock:
    """An advisory exclusive lock backed by one ``O_EXCL`` lockfile."""

    def __init__(
        self,
        path: Union[str, Path],
        wait_s: float = 10.0,
        stale_s: float = 600.0,
        poll_s: float = 0.05,
    ) -> None:
        self.path = Path(path)
        self.wait_s = wait_s
        self.stale_s = stale_s
        self.poll_s = poll_s
        self.owned = False

    # ---------------------------------------------------------------- acquire --
    def try_acquire(self) -> bool:
        """One non-blocking attempt (stale locks are broken first)."""
        self._break_if_stale()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            # Unwritable cache directory etc. — locking is best-effort,
            # so behave as if we own the lock and let the caller run.
            self.owned = False
            return True
        try:
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        finally:
            os.close(fd)
        self.owned = True
        return True

    def acquire(self) -> bool:
        """Acquire, waiting up to ``wait_s`` for the current owner.

        Returns ``True`` when this process owns the lock and should
        execute, ``False`` when the wait expired with the lock still
        held or after the owner released it — in both cases the caller
        should re-check the cache (the winner probably published) and
        only then fall back to executing unlocked.
        """
        deadline = time.monotonic() + self.wait_s
        while True:
            if self.try_acquire():
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(self.poll_s)

    # ---------------------------------------------------------------- release --
    def release(self) -> None:
        """Drop ownership (missing file is fine — someone broke us)."""
        if not self.owned:
            return
        self.owned = False
        try:
            self.path.unlink()
        except OSError:
            pass

    # -------------------------------------------------------------- liveness --
    def heartbeat(self) -> None:
        """Refresh the lockfile mtime to signal the owner is alive.

        Staleness is judged by mtime, so an owner legitimately holding
        the lock longer than ``stale_s`` would get broken by a waiting
        peer.  Long-running owners call this periodically (the
        supervised pool touches its locks per completed task); a no-op
        without ownership, best-effort like everything else here.
        """
        if not self.owned:
            return
        try:
            os.utime(self.path)
        except OSError:
            pass

    def _mtime(self) -> Optional[float]:
        """The lockfile's current mtime, or ``None`` when unreadable.

        The single stat point of the staleness protocol (and its test
        seam: scripted subclasses replay stat races deterministically).
        """
        try:
            return self.path.stat().st_mtime
        except OSError:
            return None

    def _break_if_stale(self) -> None:
        """Expire a lock whose mtime says its owner is long gone.

        Staleness is confirmed by **two** reads: between a single stat
        and the unlink, the stale lock's owner could release and another
        process recreate the file, and the unlink would then break the
        *fresh* lock.  A second stat immediately before unlinking keeps
        that window to the instruction gap (best-effort by design — a
        lost lock costs a duplicated simulation, not correctness).
        """
        mtime = self._mtime()
        if mtime is None or time.time() - mtime <= self.stale_s:
            return
        mtime = self._mtime()
        if mtime is None or time.time() - mtime <= self.stale_s:
            return
        try:
            self.path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------ context use --
    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()
