"""Figure 11: time overhead vs number of errors (1..5).

Paper shape: overhead grows with the number of errors for both Ckpt_E and
ReCkpt_E; ReCkpt_E stays below Ckpt_E at every error count, with average
time-overhead reductions of ~9–12%.
"""

from _bench_lib import run_once

from repro.experiments.figures import fig11_error_sweep


def test_fig11(benchmark, runner, emit):
    fig = run_once(benchmark, lambda: fig11_error_sweep(runner))
    emit("fig11_error_sweep", fig.render())
    s = fig.series

    for wl, per_n in s.items():
        counts = sorted(per_n)
        ck = [per_n[n]["Ckpt_E"] for n in counts]
        re = [per_n[n]["ReCkpt_E"] for n in counts]
        # Overall growth with error count.  Strict monotonicity is not
        # guaranteed: uniformly placed errors can coincide with boundary
        # times (e.g. 4 errors at 0.2/0.4/... land exactly on 25-ckpt
        # boundaries), minimising o_waste for that count.
        assert ck[-1] > ck[0] * 1.3, wl
        assert re[-1] > re[0] * 1.3, wl
        # ACR wins at every error count.
        for n in counts:
            assert per_n[n]["ReCkpt_E"] < per_n[n]["Ckpt_E"], (wl, n)

    # Average reduction across benchmarks/counts in the paper's band.
    reds = [
        1 - per_n[n]["ReCkpt_E"] / per_n[n]["Ckpt_E"]
        for per_n in s.values()
        for n in per_n
    ]
    assert 0.04 < sum(reds) / len(reds) < 0.30
