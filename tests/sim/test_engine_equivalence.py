"""Differential bit-identity: classic interpreter vs vector engine.

The vector engine replays precomputed trace plans with fully inlined
accounting; its one correctness obligation is producing *bit-identical*
``RunResult``s to the per-instruction interpreter on every program and
configuration.  This suite pins that obligation three ways:

* a seeded randomized program generator covering every opcode family,
  mixed/negative/zero strides, in-kernel load/store aliasing (forces the
  overlap fallback), loop-carried accumulators (forces the unstable-regs
  fallback), cross-core shared regions (forces the external-load
  disjointness fallback) and trip counts straddling interval boundaries
  — hundreds of programs, each run under both engines and compared via
  ``RunResult.to_dict()`` equality;
* every registered workload at tiny scale across **all nine** evaluated
  configurations;
* the fault-injection harness's two-pass trials under both engines.

A failure report always includes the generator seed, so any divergence
is reproducible with one parametrized id.
"""

from __future__ import annotations

import random

import pytest

from repro.arch.config import MachineConfig
from repro.experiments.configs import CONFIG_NAMES, ConfigRequest, make_options
from repro.inject.harness import TrialSpec, run_trial
from repro.isa.builder import KernelBuilder, chain_kernel
from repro.isa.instructions import AddressPattern
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.sim.simulator import Simulator
from repro.workloads.registry import all_workload_names, get_workload

#: Every binary ALU opcode the ISA defines (MOVI rides along via the
#: generator's immediates).
ALL_ALU_OPS = (
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.SHR,
)

#: Strides in words: negative, zero, unit, strided, line-crossing.
STRIDES = (-7, -3, -1, 0, 1, 1, 1, 2, 3, 5, 8, 13)

#: Region lengths in words: single-word up to multi-line, including
#: lengths that wrap mid-trip.
LENGTHS = (1, 2, 3, 5, 8, 16, 24, 32, 64)

#: Trip counts: tiny bodies, the numpy-eligibility threshold (24) and its
#: neighbours, and trips long enough to straddle interval boundaries.
TRIPS = (1, 2, 3, 4, 7, 8, 13, 16, 23, 24, 25, 31, 48, 64)

#: A region both cores may touch — writes here invalidate the other
#: core's planned external loads, forcing the disjointness fallback.
SHARED_BASE = 1 << 22

NUM_CORES = 2
GENERATED_PROGRAMS = 200
_BATCH = 20

CKPT_CONFIGS = tuple(n for n in CONFIG_NAMES if n != "NoCkpt")


def _pattern(rng: random.Random, region_base: int) -> AddressPattern:
    length = rng.choice(LENGTHS)
    return AddressPattern(
        region_base,
        rng.choice(STRIDES),
        length,
        offset=rng.randrange(length),
    )


def _random_kernel(rng: random.Random, name: str, core_base: int):
    """One randomized straight-line kernel.

    Draws every structural dimension the two engines treat differently:
    opcode mix, load/store counts, aliasing regions, loop-carried
    accumulators, stores followed by further definitions (unstable
    registers), ghost instructions and trip counts.
    """
    regions = [core_base + (j << 12) for j in range(4)]
    if rng.random() < 0.25:
        regions.append(SHARED_BASE)  # cross-core interference

    b = KernelBuilder(name, phase=rng.randrange(4))
    regs = [b.movi(rng.getrandbits(64)) for _ in range(rng.randint(1, 2))]
    for _ in range(rng.randint(0, 3)):
        regs.append(b.load(_pattern(rng, rng.choice(regions))))
    for _ in range(rng.randint(1, 6)):
        regs.append(b.alu(rng.choice(ALL_ALU_OPS), rng.choice(regs), rng.choice(regs)))
    if rng.random() < 0.15:
        # Loop-carried accumulator: the fresh register is live-in, so the
        # handler-visible register file is not stable across segments.
        acc = b.fresh_reg()
        regs.append(b.alu_into(Opcode.ADD, acc, acc, regs[-1]))
    for _ in range(rng.randint(0, 2)):
        b.store(rng.choice(regs), _pattern(rng, rng.choice(regions)))
    if rng.random() < 0.2:
        # Definition after a store: exercises the seen-store/unstable path.
        regs.append(b.alu(rng.choice(ALL_ALU_OPS), rng.choice(regs), rng.choice(regs)))
        b.store(regs[-1], _pattern(rng, rng.choice(regions)))
    return b.build(rng.choice(TRIPS), ghost_alu=rng.randrange(4))


def _random_programs(seed: int):
    """One randomized program per core, sharing a seeded RNG."""
    rng = random.Random(seed)
    programs = []
    for t in range(NUM_CORES):
        core_base = (t + 1) << 24
        kernels = [
            _random_kernel(rng, f"g{seed}.t{t}.k{k}", core_base)
            for k in range(rng.randint(2, 4))
        ]
        programs.append(Program(kernels, t))
    return programs


def _assert_engines_identical(sim: Simulator, request: ConfigRequest, baseline, tag):
    a = sim.run(make_options(request, baseline, engine="interp"))
    b = sim.run(make_options(request, baseline, engine="vector"))
    assert a.to_dict() == b.to_dict(), (
        f"engine divergence: {tag} config={request.config}"
    )
    return a


def _check_program(programs, seed: int) -> None:
    sim = Simulator(programs, MachineConfig(num_cores=NUM_CORES))
    base_req = ConfigRequest("NoCkpt", memory_seed=seed % 3)
    base = _assert_engines_identical(sim, base_req, None, f"seed={seed}")
    profile = base.baseline_profile()
    request = ConfigRequest(
        CKPT_CONFIGS[seed % len(CKPT_CONFIGS)],
        num_checkpoints=2 + seed % 5,
        error_count=1 + seed % 2,
        threshold=2 + 4 * (seed % 3),
        memory_seed=seed % 3,
    )
    _assert_engines_identical(sim, request, profile, f"seed={seed}")


class TestGeneratedPrograms:
    """Randomized differential testing across engines."""

    @pytest.mark.parametrize("batch", range(GENERATED_PROGRAMS // _BATCH))
    def test_bit_identical(self, batch):
        for seed in range(batch * _BATCH, (batch + 1) * _BATCH):
            _check_program(_random_programs(seed), seed)

    def test_generator_covers_every_opcode_family(self):
        """Meta-test: the corpus actually exercises the whole ISA and
        every fallback-triggering shape (guards generator drift)."""
        seen_ops = set()
        movi = loads = stores = shared = accum = 0
        neg_stride = zero_stride = 0
        for seed in range(GENERATED_PROGRAMS):
            for program in _random_programs(seed):
                for kernel in program.kernels:
                    for ins in kernel.body:
                        t = type(ins).__name__
                        if t == "AluInstr":
                            seen_ops.add(ins.op)
                        elif t == "MoviInstr":
                            movi += 1
                        elif t == "LoadInstr":
                            loads += 1
                            if ins.pattern.base == SHARED_BASE:
                                shared += 1
                            neg_stride += ins.pattern.stride < 0
                            zero_stride += ins.pattern.stride == 0
                        else:
                            stores += 1
                            if ins.pattern.base == SHARED_BASE:
                                shared += 1
                    regs_written_after_use = any(
                        type(ins).__name__ == "AluInstr"
                        and ins.dst in (ins.src_a, ins.src_b)
                        for ins in kernel.body
                    )
                    accum += regs_written_after_use
        assert seen_ops == set(ALL_ALU_OPS)
        assert movi and loads and stores
        assert shared > 0, "no cross-core shared-region accesses generated"
        assert accum > 0, "no loop-carried accumulators generated"
        assert neg_stride > 0 and zero_stride > 0


class TestDirectedFallbacks:
    """Deterministic programs pinning each fallback trigger by name."""

    def _run(self, programs):
        sim = Simulator(programs, MachineConfig(num_cores=NUM_CORES))
        base = _assert_engines_identical(
            sim, ConfigRequest("NoCkpt"), None, "directed"
        )
        for config in ("Ckpt_NE", "ReCkpt_NE", "ReCkpt_E_Loc"):
            _assert_engines_identical(
                sim,
                ConfigRequest(config, num_checkpoints=4),
                base.baseline_profile(),
                "directed",
            )

    def test_store_load_aliasing_overlap(self):
        """A kernel loading the region it stores runs interpreted (the
        plan's overlap bit) — results must still match exactly."""
        programs = []
        for t in range(NUM_CORES):
            base = (t + 1) << 24
            region = AddressPattern(base, 1, 16)
            kernels = [
                chain_kernel(
                    f"alias.t{t}.k{k}",
                    region,
                    [region],  # load and store the same words
                    chain_depth=3,
                    trip_count=24,
                    salt=t * 7 + k,
                )
                for k in range(3)
            ]
            programs.append(Program(kernels, t))
        self._run(programs)

    def test_loop_carried_accumulate(self):
        programs = []
        for t in range(NUM_CORES):
            base = (t + 1) << 24
            kernels = [
                chain_kernel(
                    f"acc.t{t}.k{k}",
                    AddressPattern(base, 1, 32),
                    [AddressPattern(base + (1 << 20), 1, 32, offset=k)],
                    chain_depth=4,
                    trip_count=25,
                    salt=t * 11 + k,
                    accumulate=True,
                )
                for k in range(3)
            ]
            programs.append(Program(kernels, t))
        self._run(programs)

    def test_cross_core_shared_region(self):
        """Core 0 writes what core 1 planned to load from the pristine
        image: the disjointness check must force core 1's fallback."""
        shared = AddressPattern(SHARED_BASE, 1, 32)
        p0 = Program(
            [
                chain_kernel(
                    "writer.k0", shared,
                    [AddressPattern(1 << 24, 1, 32)],
                    chain_depth=2, trip_count=32, salt=3,
                )
            ],
            0,
        )
        p1 = Program(
            [
                chain_kernel(
                    "reader.k0",
                    AddressPattern(2 << 24, 1, 32),
                    [shared],
                    chain_depth=2, trip_count=32, salt=5,
                )
            ],
            1,
        )
        self._run([p0, p1])

    def test_single_iteration_and_stride_zero(self):
        """Degenerate shapes: trip_count=1 and a stride-0 store stream
        (every iteration rewrites one word — only the first write of each
        interval is a log candidate)."""
        programs = []
        for t in range(NUM_CORES):
            base = (t + 1) << 24
            one_word = AddressPattern(base, 0, 8)
            kernels = [
                chain_kernel(
                    f"z.t{t}.k{k}", one_word,
                    [AddressPattern(base + (1 << 20), 1, 8)],
                    chain_depth=2,
                    trip_count=1 if k % 2 else 24,
                    salt=t + k,
                )
                for k in range(4)
            ]
            programs.append(Program(kernels, t))
        self._run(programs)


@pytest.mark.parametrize("workload", sorted(all_workload_names()))
class TestRegisteredWorkloads:
    """Every registered workload, every configuration, both engines."""

    def test_all_configs_bit_identical(self, workload):
        spec = get_workload(workload)
        programs = spec.build_programs(NUM_CORES, region_scale=0.05, reps=3)
        sim = Simulator(programs, MachineConfig(num_cores=NUM_CORES))
        base = _assert_engines_identical(
            sim, ConfigRequest("NoCkpt"), None, workload
        )
        profile = base.baseline_profile()
        for config in CKPT_CONFIGS:
            _assert_engines_identical(
                sim,
                ConfigRequest(
                    config,
                    num_checkpoints=4,
                    threshold=spec.default_threshold,
                ),
                profile,
                workload,
            )


class TestInjectionTrials:
    """The two-pass fault-injection harness under both engines."""

    @pytest.mark.parametrize("seed", (0, 1))
    def test_trial_results_identical(self, seed):
        spec = TrialSpec(workload="cg", seed=seed, memory_seed=seed)
        a = run_trial(spec, engine="interp")
        b = run_trial(spec, engine="vector")
        assert a.to_dict() == b.to_dict()
