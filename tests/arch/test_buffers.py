"""Tests for repro.arch.buffers (AddrMap generations and tombstones)."""

from repro.arch.buffers import AddrMap, AddrMapEntry, OperandBuffer
from repro.compiler.slices import Slice
from repro.isa.instructions import AluInstr, MoviInstr
from repro.isa.opcodes import Opcode


def entry(addr, value_offset=7):
    sl = Slice(
        site=0,
        instructions=(MoviInstr(1, value_offset), AluInstr(Opcode.ADD, 2, 0, 1)),
        frontier=(0,),
        result_reg=2,
    )
    return AddrMapEntry(addr, sl, (addr,))


class TestAddrMapGenerations:
    def test_open_entries_not_visible_until_commit(self):
        m = AddrMap(16)
        m.record(entry(8))
        assert m.committed_lookup(8) is None
        m.commit_generation()
        assert m.committed_lookup(8) is not None

    def test_two_generation_retention(self):
        m = AddrMap(16)
        m.record(entry(8))
        m.commit_generation()   # gen 1 holds addr 8
        m.commit_generation()   # gen 2 empty
        assert m.committed_lookup(8) is not None  # still retained
        m.commit_generation()   # gen 1 expires
        assert m.committed_lookup(8) is None

    def test_youngest_generation_wins(self):
        m = AddrMap(16)
        m.record(entry(8, value_offset=1))
        m.commit_generation()
        m.record(entry(8, value_offset=2))
        m.commit_generation()
        got = m.committed_lookup(8)
        assert got.slice_.execute((0,)) == 2

    def test_reassociation_replaces_open_entry(self):
        m = AddrMap(16)
        m.record(entry(8, value_offset=1))
        m.record(entry(8, value_offset=2))
        m.commit_generation()
        assert m.committed_lookup(8).slice_.execute((0,)) == 2
        assert m.open_size == 0

    def test_capacity_rejection(self):
        m = AddrMap(2)
        assert m.record(entry(0))
        assert m.record(entry(8))
        assert not m.record(entry(16))
        assert m.rejections == 1
        # Existing address may still be replaced at capacity.
        assert m.record(entry(0, value_offset=9))


class TestTombstones:
    def test_invalidate_masks_older_generation(self):
        m = AddrMap(16)
        m.record(entry(8))
        m.commit_generation()       # gen k-1: addr 8 recomputable
        m.invalidate(8)             # plain store in interval k
        m.commit_generation()       # gen k: tombstone
        # Without the tombstone this would wrongly return the stale entry.
        assert m.committed_lookup(8) is None

    def test_invalidate_then_record_restores(self):
        m = AddrMap(16)
        m.invalidate(8)
        m.record(entry(8))
        m.commit_generation()
        assert m.committed_lookup(8) is not None

    def test_tombstones_do_not_consume_capacity(self):
        m = AddrMap(1)
        for a in range(0, 80, 8):
            m.invalidate(a)
        assert m.record(entry(1024))

    def test_open_tombstone_invisible_to_lookup(self):
        m = AddrMap(16)
        m.record(entry(8))
        m.commit_generation()
        m.invalidate(8)  # open-generation tombstone only
        # The committed generation still proves the *old* value.
        assert m.committed_lookup(8) is not None

    def test_entries_for_checkpoint(self):
        m = AddrMap(16)
        m.record(entry(8))
        m.commit_generation()
        m.record(entry(16))
        m.commit_generation()
        assert [e.address for e in m.entries_for_checkpoint(1)] == [16]
        assert [e.address for e in m.entries_for_checkpoint(2)] == [8]
        assert m.entries_for_checkpoint(3) == []


class TestOperandBuffer:
    def test_reserve_release(self):
        b = OperandBuffer(4)
        assert b.try_reserve(3)
        assert not b.try_reserve(2)
        assert b.rejections == 1
        b.release(3)
        assert b.try_reserve(4)
        assert b.peak_words == 4

    def test_release_floors_at_zero(self):
        b = OperandBuffer(4)
        b.release(10)
        assert b.words == 0
