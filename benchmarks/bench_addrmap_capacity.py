"""Ablation: AddrMap capacity sensitivity (§III-C storage complexity).

The paper argues the AddrMap can stay small because the number of unique
first-writes per interval is bounded by the checkpoint period.  This bench
sweeps the capacity and shows checkpoint-size reduction saturating once
the AddrMap covers the per-interval unique-store footprint — and
degrading gracefully (not collapsing) below it.
"""

from _bench_lib import BENCH_REPS, BENCH_SCALE, run_once

from repro.arch.config import MachineConfig
from repro.sim.simulator import SimulationOptions, Simulator
from repro.compiler.policy import ThresholdPolicy
from repro.util.tables import format_table
from repro.workloads.registry import get_workload

CAPACITIES = (16, 64, 256, 1024, 8192)


def sweep():
    spec = get_workload("bt")
    rows = []
    reductions = {}
    for capacity in CAPACITIES:
        cfg = MachineConfig(num_cores=8, addrmap_capacity=capacity)
        programs = spec.build_programs(
            8, region_scale=BENCH_SCALE, reps=BENCH_REPS
        )
        sim = Simulator(programs, cfg)
        base = sim.run_baseline()
        prof = base.baseline_profile()
        ck = sim.run(
            SimulationOptions(label="Ckpt", scheme="global", baseline=prof)
        )
        re = sim.run(
            SimulationOptions(
                label="ReCkpt",
                scheme="global",
                acr=True,
                slice_policy=ThresholdPolicy(10),
                baseline=prof,
            )
        )
        red = 1 - re.total_checkpoint_bytes / ck.total_checkpoint_bytes
        reductions[capacity] = red
        rows.append(
            [capacity, round(100 * red, 2), re.addrmap_rejections]
        )
    table = format_table(
        ["AddrMap capacity", "size reduction %", "rejections"],
        rows,
        title="Ablation: AddrMap capacity sensitivity (bt)",
    )
    return table, reductions


def test_addrmap_capacity(benchmark, emit):
    table, reductions = run_once(benchmark, sweep)
    emit("ablation_addrmap_capacity", table)
    reds = [reductions[c] for c in CAPACITIES]
    # Monotone (more capacity never hurts) and saturating.
    for a, b in zip(reds, reds[1:]):
        assert b >= a - 0.01
    assert reds[-1] == max(reds)
    # A tiny AddrMap still yields some benefit; a big one much more.
    assert reds[0] >= 0.0
    assert reds[-1] > reds[0]
