"""Tests for repro.inject.harness — one trial, end to end.

The load-bearing claims: every injection target recovers bit-exactly
under both configurations, the trial is a pure function of its spec, and
the provenance (what was flipped, where, when) is fully populated.
"""

import pytest

from repro.inject.harness import (
    CONFIGS,
    OUTCOMES,
    TARGET_KINDS,
    TrialResult,
    TrialSpec,
    run_trial,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RecordingTracer


def trial(workload="cg", **kw):
    kw.setdefault("memory_seed", kw.get("seed", 0))
    return run_trial(TrialSpec(workload=workload, **kw))


class TestSpecValidation:
    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            TrialSpec(workload="cg", config="Ckpt_E")

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            TrialSpec(workload="cg", target="cache")

    def test_unknown_defect_rejected(self):
        with pytest.raises(ValueError):
            TrialSpec(workload="cg", defect="drop-everything")

    def test_latency_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TrialSpec(workload="cg", detection_latency_fraction=1.5)

    def test_unknown_workload_fails_at_run(self):
        with pytest.raises(KeyError):
            run_trial(TrialSpec(workload="nosuch"))

    def test_roundtrip(self):
        spec = TrialSpec(workload="dc", config="BER", seed=9, target="arch")
        assert TrialSpec.from_dict(spec.to_dict()) == spec

    def test_canonical_key_distinguishes_every_field(self):
        a = TrialSpec(workload="cg", seed=1)
        b = TrialSpec(workload="cg", seed=2)
        assert a.canonical_key() != b.canonical_key()
        assert a.canonical_key() == TrialSpec(
            workload="cg", seed=1
        ).canonical_key()


class TestBitExactRecovery:
    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("target", TARGET_KINDS)
    def test_recovers_exactly(self, config, target):
        for seed in range(3):
            r = trial(config=config, target=target, seed=seed)
            assert r.outcome == "recovered-exact"
            assert r.divergence_count == 0
            assert r.divergences == ()
            assert r.recovered_exactly

    def test_across_workloads(self):
        for wl in ("bt", "dc", "ft", "is", "lu", "mg", "sp"):
            r = trial(workload=wl, config="ACR", seed=4)
            assert r.outcome == "recovered-exact", wl

    def test_addresses_actually_compared(self):
        r = trial()
        assert r.addresses_checked > 0
        assert r.steps > 0
        assert r.checkpoints >= 0


class TestProvenance:
    def test_injection_fully_populated(self):
        r = trial(target="mem", seed=0)
        inj = r.injection
        assert inj.requested == "mem"
        assert inj.kind in TARGET_KINDS
        assert 1 <= inj.step == r.injection_step < r.steps
        assert 0 <= inj.bit < 64
        assert inj.before != inj.after
        # mem flips name an address; arch flips name a register.
        if inj.kind == "arch":
            assert inj.register >= 0 and inj.address == -1
        else:
            assert inj.address >= 0 and inj.register == -1

    def test_timeline_ordering(self):
        r = trial(seed=5)
        assert 0.0 < r.occurred < r.detected <= r.steps / 4
        assert r.injection_step < r.detection_step <= r.steps
        assert -1 <= r.safe_checkpoint < r.checkpoints

    def test_fallback_records_requested_kind(self):
        # Early injections (before any checkpoint) can't hit retained
        # logs or committed AddrMap entries; the fallback chain must
        # still record what the campaign asked for.
        for seed in range(8):
            r = trial(target="log", config="BER", seed=seed)
            assert r.injection.requested == "log"
            assert r.injection.kind in ("log", "mem", "arch")

    def test_acr_recomputes_sometimes(self):
        # At least one of these seeds rolls back through omitted records.
        recomputed = sum(
            trial(config="ACR", seed=s).recomputed_values for s in range(6)
        )
        assert recomputed > 0

    def test_ber_never_recomputes(self):
        for s in range(6):
            assert trial(config="BER", seed=s).recomputed_values == 0


class TestDeterminism:
    def test_same_spec_same_result(self):
        spec = TrialSpec(workload="dc", config="ACR", seed=3, memory_seed=3)
        assert run_trial(spec).to_dict() == run_trial(spec).to_dict()

    def test_seed_changes_injection(self):
        a = trial(seed=0)
        b = trial(seed=1)
        assert (a.injection_step, a.injection.bit) != (
            b.injection_step, b.injection.bit,
        )


class TestResultSerialisation:
    def test_roundtrip(self):
        r = trial(config="ACR", target="addrmap", seed=0)
        assert TrialResult.from_dict(r.to_dict()) == r

    def test_missing_field_rejected(self):
        doc = trial().to_dict()
        doc.pop("outcome")
        with pytest.raises(ValueError):
            TrialResult.from_dict(doc)

    def test_extra_field_rejected(self):
        doc = trial().to_dict()
        doc["bonus"] = 1
        with pytest.raises(ValueError):
            TrialResult.from_dict(doc)

    def test_bad_outcome_rejected(self):
        doc = trial().to_dict()
        doc["outcome"] = "mostly-fine"
        assert "mostly-fine" not in OUTCOMES
        with pytest.raises(ValueError):
            TrialResult.from_dict(doc)

    def test_diverged_without_divergences_rejected(self):
        doc = trial().to_dict()
        doc["outcome"] = "diverged"  # but divergence_count stays 0
        with pytest.raises(ValueError):
            TrialResult.from_dict(doc)

    def test_boolean_masquerading_as_count_rejected(self):
        doc = trial().to_dict()
        doc["checkpoints"] = True
        with pytest.raises(ValueError):
            TrialResult.from_dict(doc)


class TestObservability:
    def test_events_and_metrics_emitted(self):
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        spec = TrialSpec(workload="cg", seed=0)
        result = run_trial(spec, tracer=tracer, metrics=metrics)
        names = [e.name for e in tracer.events]
        assert "fault_injected" in names
        assert ("recovery_verified" in names) == (
            result.outcome == "recovered-exact"
        )
        counters = metrics.counters_dict()
        assert counters.get("inject.trials") == 1
        assert counters.get("inject.faults") == 1
