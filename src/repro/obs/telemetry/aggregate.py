"""Campaign-wide telemetry aggregation.

:class:`CampaignTelemetry` is the parent-side fold over every telemetry
channel a campaign has: frames streamed out of workers (or emitted
inline), pool gauges reported by the supervisor each sweep, the
:class:`~repro.experiments.progress.ProgressTracker`'s cache/resilience
counters, and the parent's own :class:`PhaseProfiler` (cache I/O happens
in the parent).  It maintains rolling gauges (worker utilization, queue
depth, active tasks), cumulative counters (sim-iterations, log records),
``profile.*`` histograms, and periodically serialises the whole state as
a JSONL snapshot beside the completion journal
(:mod:`repro.obs.telemetry.snapshots`).

Everything here is advisory and receiver-side tolerant: a malformed
frame is counted and dropped, a subscriber exception is swallowed, and
nothing feeds back into results.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry.frames import (
    MetricsDelta,
    PhaseChanged,
    TaskFinished,
    TaskHeartbeat,
    TaskStarted,
    TelemetryFrame,
    frame_from_dict,
)
from repro.obs.telemetry.profile import PhaseProfiler
from repro.obs.telemetry.snapshots import SnapshotWriter

__all__ = ["CampaignTelemetry"]


class CampaignTelemetry:
    """Merge frames + progress + pool gauges into campaign-wide state.

    ``progress`` (optional) is the runner's ProgressTracker — its cache
    and resilience counters ride along in every snapshot.  With
    ``snapshot_path`` set, a rate-limited :class:`SnapshotWriter` appends
    the rolling state as JSONL (plus one final snapshot on
    :meth:`close`).  ``subscribers`` (e.g. the live monitor) are called
    with this object after every state change and rate-limit themselves.
    """

    def __init__(
        self,
        progress=None,
        snapshot_path: Optional[Union[str, Path]] = None,
        snapshot_interval_s: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.progress = progress
        self.metrics = MetricsRegistry()
        #: Campaign-wide phase attribution: the parent's own phases
        #: (cache I/O) plus every ``task_finished`` frame's totals.
        self.profiler = PhaseProfiler()
        self.writer: Optional[SnapshotWriter] = (
            SnapshotWriter(snapshot_path, min_interval_s=snapshot_interval_s,
                           clock=clock)
            if snapshot_path is not None
            else None
        )
        self.subscribers: List[Callable[["CampaignTelemetry"], None]] = []
        self._clock = clock
        self._t0 = clock()
        # Frame accounting.
        self.frames = 0
        self.malformed = 0
        # Task lifecycle.
        self.tasks_started = 0
        self.tasks_finished = 0
        self.tasks_failed = 0
        #: Live tasks: label -> {worker, pid, interval, phase, since}.
        self.active: Dict[str, Dict[str, Any]] = {}
        # Cumulative counters folded off heartbeat/metrics-delta frames.
        self.counters: Dict[str, int] = {}
        self._last_instructions: Dict[str, int] = {}
        # Pool gauges (supervisor sweep; zeros for inline execution).
        self.workers = 0
        self.busy = 0
        self.queue_depth = 0
        self._closed = False

    # ------------------------------------------------------------- ingestion --
    def on_frame(self, frame: TelemetryFrame, worker: int = -1) -> None:
        """Fold one decoded frame in (the inline-execution sink)."""
        self.frames += 1
        task = frame.task
        if isinstance(frame, TaskStarted):
            self.tasks_started += 1
            self.metrics.counter("telemetry.tasks_started").inc()
            self.active[task] = {
                "worker": worker, "pid": frame.pid,
                "interval": -1, "phase": "", "since": frame.ts_s,
            }
        elif isinstance(frame, TaskHeartbeat):
            entry = self.active.setdefault(
                task,
                {"worker": worker, "pid": -1, "interval": -1, "phase": "",
                 "since": frame.ts_s},
            )
            entry["interval"] = frame.interval
            last = self._last_instructions.get(task, 0)
            # Cumulative per run; a nested run (a dependent's inline
            # baseline) restarts the count — treat a drop as a restart.
            delta = (
                frame.instructions - last
                if frame.instructions >= last
                else frame.instructions
            )
            self._last_instructions[task] = frame.instructions
            self._count("instructions", delta)
            self.metrics.counter("telemetry.heartbeats").inc()
        elif isinstance(frame, PhaseChanged):
            entry = self.active.get(task)
            if entry is not None:
                entry["phase"] = frame.phase
        elif isinstance(frame, MetricsDelta):
            for name, value in frame.counters.items():
                self._count(name, value)
        elif isinstance(frame, TaskFinished):
            self.tasks_finished += 1
            if not frame.ok:
                self.tasks_failed += 1
            self.active.pop(task, None)
            self._last_instructions.pop(task, None)
            self.profiler.merge(frame.phase_seconds, frame.phase_counts)
            for name, seconds in frame.phase_seconds.items():
                self.metrics.histogram(f"profile.{name}").observe(seconds)
            self.metrics.histogram("telemetry.task_seconds").observe(
                frame.seconds
            )
        self._changed()

    def on_frame_dict(self, doc: Any, worker: int = -1) -> None:
        """Fold one wire dict in (the supervisor's pipe-side path); a
        frame that fails to decode is counted malformed and dropped."""
        try:
            frame = frame_from_dict(doc)
        except ValueError:
            self.malformed += 1
            return
        self.on_frame(frame, worker=worker)

    def update_pool(self, workers: int, busy: int, queue_depth: int) -> None:
        """Pool gauges, reported by the supervisor once per sweep."""
        self.workers = workers
        self.busy = busy
        self.queue_depth = queue_depth
        self._changed()

    def _count(self, name: str, n: int) -> None:
        if n:
            self.counters[name] = self.counters.get(name, 0) + n

    def _changed(self) -> None:
        if self.writer is not None:
            self.writer.maybe_write(self.snapshot)
        for subscriber in self.subscribers:
            try:
                subscriber(self)
            except Exception:
                pass  # advisory: a broken dashboard must not kill a run

    # --------------------------------------------------------------- queries --
    @property
    def snapshots_written(self) -> int:
        return self.writer.written if self.writer is not None else 0

    def elapsed_s(self) -> float:
        return self._clock() - self._t0

    def snapshot(self) -> Dict[str, Any]:
        """The rolling state as one JSON-safe dict (exactly
        :data:`~repro.obs.telemetry.snapshots.SNAPSHOT_FIELDS`)."""
        elapsed = self.elapsed_s()
        rates: Dict[str, float] = {
            "frames_per_s": round(self.frames / elapsed, 3) if elapsed else 0.0,
            "iterations_per_s": (
                round(self.counters.get("instructions", 0) / elapsed, 3)
                if elapsed else 0.0
            ),
            "utilization": (
                round(self.busy / self.workers, 3) if self.workers else 0.0
            ),
        }
        progress_doc: Dict[str, Any] = {}
        progress = self.progress
        if progress is not None:
            progress_doc = {
                "runs": progress.total_runs + progress.memo_hits,
                "simulated": progress.simulated,
                "disk_hits": progress.disk_hits,
                "disk_misses": progress.disk_misses,
                "hit_rate": round(progress.hit_rate, 4),
                "retried": progress.retried,
                "timed_out": progress.timed_out,
                "worker_deaths": progress.worker_deaths,
                "degraded_to_serial": progress.degraded_to_serial,
                "resumed": progress.resumed,
                "vector_replayed": progress.vector_replayed,
                "vector_fallback": progress.vector_fallback,
                "events_dropped": progress.events_dropped,
            }
        return {
            "ts_s": time.time(),
            "elapsed_s": round(elapsed, 3),
            "frames": self.frames,
            "malformed": self.malformed,
            "workers": self.workers,
            "busy": self.busy,
            "queue_depth": self.queue_depth,
            "tasks_started": self.tasks_started,
            "tasks_finished": self.tasks_finished,
            "tasks_active": sorted(self.active),
            "counters": dict(sorted(self.counters.items())),
            "rates": rates,
            "phase_seconds": {
                k: round(v, 6) for k, v in sorted(self.profiler.seconds.items())
            },
            "phase_counts": dict(sorted(self.profiler.counts.items())),
            "progress": progress_doc,
        }

    def attribution_table(self) -> str:
        """The campaign's wall-clock attribution (phases across every
        task plus the parent's cache I/O)."""
        return self.profiler.attribution_table(
            title="campaign wall-clock attribution"
        )

    # ----------------------------------------------------------------- close --
    def close(self) -> Dict[str, Any]:
        """Write the final snapshot (unconditionally) and return it."""
        snap = self.snapshot()
        if not self._closed:
            self._closed = True
            if self.writer is not None:
                self.writer.write(snap)
        return snap
