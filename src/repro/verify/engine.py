"""The lint engine: rule selection, execution, and the compile post-pass.

:func:`verify_program` is the single entry point: it runs the selected
static rules (``ACR001``–``ACR007`` plus the advisory vector-safety
rules ``ACR009``–``ACR012``) over a compiled program, then — when
enabled — the differential recompute oracle (``ACR008``), skipping sites
whose static errors already make replay meaningless, and returns a
:class:`~repro.verify.diagnostics.LintReport`.

``compile_program(..., verify=True)`` calls this and raises
:class:`SliceVerificationError` on error-severity findings, turning the
paper's implicit compiler invariant into an enforced post-condition.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence

from repro.arch.config import MachineConfig
from repro.compiler.embed import CompiledProgram
from repro.verify.diagnostics import LintReport
from repro.verify.oracle import ORACLE_RULE_ID, run_differential_oracle
from repro.verify.rules import RULES, VerifyContext, run_static_rules

__all__ = [
    "ALL_RULE_IDS",
    "SliceVerificationError",
    "select_rules",
    "verify_program",
]

#: Every rule id the engine knows, static rules first, oracle last.
ALL_RULE_IDS = tuple(RULES) + (ORACLE_RULE_ID,)


class SliceVerificationError(ValueError):
    """Raised by ``compile_program(verify=True)`` on error findings."""

    def __init__(self, report: LintReport) -> None:
        self.report = report
        errors = report.errors
        head = "; ".join(d.render() for d in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        super().__init__(
            f"slice verification failed with {len(errors)} error(s): "
            f"{head}{more}"
        )


def _matches(rule_id: str, patterns: Sequence[str]) -> bool:
    """True when any pattern is a case-insensitive prefix of ``rule_id``."""
    rid = rule_id.upper()
    return any(rid.startswith(p.strip().upper()) for p in patterns if p.strip())


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[str]:
    """Resolve ``--select`` / ``--ignore`` patterns to concrete rule ids.

    Patterns match by prefix (``ACR00``, ``acr003``).  Unknown patterns
    raise ``ValueError`` so typos do not silently disable verification.
    """
    for patterns in (select, ignore):
        for p in patterns or ():
            if p.strip() and not any(_matches(r, [p]) for r in ALL_RULE_IDS):
                raise ValueError(
                    f"unknown rule pattern {p!r}; known rules: "
                    f"{', '.join(ALL_RULE_IDS)}"
                )
    chosen = [
        r for r in ALL_RULE_IDS if select is None or _matches(r, select)
    ]
    if ignore is not None:
        chosen = [r for r in chosen if not _matches(r, ignore)]
    return chosen


def verify_program(
    compiled: CompiledProgram,
    *,
    policy: Optional[object] = None,
    operand_capacity: Optional[int] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    oracle: bool = True,
    oracle_seeds: Sequence[int] = (0, 1),
    oracle_samples: int = 3,
) -> LintReport:
    """Verify one compiled program; returns the full report.

    Parameters
    ----------
    policy:
        The selection policy the embedding ran with (enables ACR005).
    operand_capacity:
        Operand-buffer word budget (default: the Table-I machine's).
    select, ignore:
        Rule-id prefix filters, ruff-style.
    oracle, oracle_seeds, oracle_samples:
        Differential-replay controls.  Sites carrying static error
        findings are excluded from replay — their recomputation is
        already known to be unsound.
    """
    if operand_capacity is None:
        operand_capacity = MachineConfig().operand_buffer_capacity
    rule_ids = select_rules(select, ignore)

    ctx = VerifyContext(
        program=compiled.program,
        slices=compiled.slices,
        policy=policy,
        operand_capacity=operand_capacity,
        peers=compiled.peers,
    )
    report = LintReport(slices_checked=len(compiled.slices))
    static_ids = [r for r in rule_ids if r in RULES]
    report.extend(run_static_rules(ctx, static_ids))

    if oracle and ORACLE_RULE_ID in rule_ids:
        bad_sites: FrozenSet[int] = frozenset(
            d.site for d in report.errors if d.site is not None
        )
        result = run_differential_oracle(
            compiled.program,
            compiled.slices,
            seeds=oracle_seeds,
            samples_per_site=oracle_samples,
            skip_sites=bad_sites,
        )
        report.extend(result.findings)
        report.oracle_values_checked = result.values_checked
        report.oracle_sites_skipped = result.sites_skipped
    return report
