"""The campaign service's wire protocol: versioned line-delimited JSON.

One message is one ``\\n``-terminated canonical-JSON object carrying a
version stamp (``"v"``) and an operation (``"op"``).  The framing is the
journal's durability model applied to a socket: whole-line writes, so a
reader can always resynchronise on the next newline, and a connection
torn mid-message costs exactly the unterminated tail
(:func:`decode_stream` reports it as ``torn`` rather than raising —
``tail_is_torn`` for byte streams).

Client → daemon operations: ``submit``, ``ping``, ``shutdown``,
``watch``.  Daemon → client: ``accepted``, ``frame``, ``result``,
``status``, ``error``, ``bye``.  Decoding is strict — unknown operation,
missing/mismatched version, or a non-object line raises
:class:`ProtocolError` (the receiving side counts and drops it); the
codec itself round-trips any JSON-safe payload bit-exactly (a hypothesis
suite pins this).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "CLIENT_OPS",
    "SERVER_OPS",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "decode_stream",
]

#: Bump when any message layout changes; mismatched peers then fail
#: loudly at the first message instead of misreading each other.
PROTOCOL_VERSION = 1

#: Operations a client may send.
CLIENT_OPS = ("submit", "ping", "shutdown", "watch")

#: Operations the daemon may send.
SERVER_OPS = ("accepted", "frame", "result", "status", "error", "bye")

_ALL_OPS = frozenset(CLIENT_OPS) | frozenset(SERVER_OPS)


class ProtocolError(ValueError):
    """A wire message violates the protocol (version, shape, or op)."""


def encode_frame(doc: Dict[str, Any]) -> bytes:
    """One message as wire bytes: version-stamped canonical JSON plus the
    line terminator.

    ``doc`` must carry a known ``"op"``; the version stamp is added here
    (an existing ``"v"`` must agree).  Canonical encoding (sorted keys,
    no whitespace) keeps equal messages byte-equal — the round-trip
    tests' fixed point.
    """
    if not isinstance(doc, dict):
        raise ProtocolError("wire message must be an object")
    op = doc.get("op")
    if op not in _ALL_OPS:
        raise ProtocolError(f"unknown wire op {op!r}")
    if "v" in doc and doc["v"] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"wire version {doc['v']!r} != {PROTOCOL_VERSION}"
        )
    out = dict(doc)
    out["v"] = PROTOCOL_VERSION
    try:
        line = json.dumps(out, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable wire message: {exc}") from None
    if "\n" in line:
        # json.dumps never emits raw newlines, but the framing invariant
        # is load-bearing enough to assert.
        raise ProtocolError("encoded message contains a newline")
    return line.encode("utf-8") + b"\n"


def decode_frame(line: Any) -> Dict[str, Any]:
    """One wire line back into its message dict (strict inverse of
    :func:`encode_frame`); raises :class:`ProtocolError` on any drift."""
    if isinstance(line, (bytes, bytearray)):
        try:
            line = bytes(line).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"undecodable wire bytes: {exc}") from None
    if not isinstance(line, str):
        raise ProtocolError("wire line must be str or bytes")
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"undecodable wire message: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError("wire message is not an object")
    if doc.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"wire version {doc.get('v')!r} != {PROTOCOL_VERSION}"
        )
    if doc.get("op") not in _ALL_OPS:
        raise ProtocolError(f"unknown wire op {doc.get('op')!r}")
    return doc


def decode_stream(
    data: bytes,
) -> Tuple[List[Dict[str, Any]], bytes, int]:
    """Split a byte buffer into complete messages.

    Returns ``(messages, tail, malformed)``: every decodable complete
    line in order, the unterminated tail bytes (a torn frame — the
    caller keeps them and prepends the next read; empty when the buffer
    ended on a line boundary), and how many complete-but-undecodable
    lines were dropped.  Mirrors the journal reader's tolerance: a torn
    tail is never an error and a corrupt line never poisons the lines
    after it.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise ProtocolError("wire buffer must be bytes")
    chunks = bytes(data).split(b"\n")
    tail = chunks[-1]
    messages: List[Dict[str, Any]] = []
    malformed = 0
    for chunk in chunks[:-1]:
        if not chunk.strip():
            continue
        try:
            messages.append(decode_frame(chunk))
        except ProtocolError:
            malformed += 1
    return messages, tail, malformed
