"""Tests for repro.acr.handlers."""

import pytest

from repro.acr.handlers import AcrCheckpointHandler, AcrRecoveryHandler, AssocOutcome
from repro.arch.config import MachineConfig
from repro.ckpt.log import IntervalLog
from repro.arch.buffers import AddrMapEntry
from repro.compiler.slices import Slice, SliceTable
from repro.isa.instructions import AluInstr, MoviInstr
from repro.isa.interpreter import MemoryImage
from repro.isa.opcodes import Opcode


def plus_slice(site, offset):
    return Slice(
        site,
        (MoviInstr(1, offset), AluInstr(Opcode.ADD, 2, 0, 1)),
        (0,),
        2,
    )


def make_handler(num_cores=2, capacity=8):
    cfg = MachineConfig(
        num_cores=num_cores, addrmap_capacity=capacity,
        operand_buffer_capacity=capacity * 4,
    )
    tables = []
    for _ in range(num_cores):
        t = SliceTable()
        t.add(plus_slice(0, 5))
        tables.append(t)
    return cfg, AcrCheckpointHandler(cfg, tables)


class TestOnStore:
    def test_covered_store_recorded(self):
        _, h = make_handler()
        out = h.on_store(0, site=0, address=64, regs=[37, 0, 0])
        assert out is AssocOutcome.RECORDED
        assert h.assoc_executed == 1

    def test_uncovered_store_invalidates(self):
        _, h = make_handler()
        out = h.on_store(0, site=99, address=64, regs=[0])
        assert out is AssocOutcome.INVALIDATED

    def test_operand_snapshot_from_live_regs(self):
        _, h = make_handler()
        regs = [37, 0, 0]
        h.on_store(0, 0, 64, regs)
        regs[0] = 999  # later mutation must not affect the snapshot
        h.on_checkpoint()
        entry = h.may_omit(0, 64)
        assert entry is not None
        assert entry.operands == (37,)
        assert entry.slice_.execute(entry.operands) == 42

    def test_addrmap_capacity_rejection(self):
        _, h = make_handler(capacity=2)
        assert h.on_store(0, 0, 0, [1, 0, 0]) is AssocOutcome.RECORDED
        assert h.on_store(0, 0, 8, [1, 0, 0]) is AssocOutcome.RECORDED
        assert h.on_store(0, 0, 16, [1, 0, 0]) is AssocOutcome.REJECTED

    def test_per_core_isolation(self):
        _, h = make_handler()
        h.on_store(0, 0, 64, [1, 0, 0])
        h.on_checkpoint()
        assert h.may_omit(0, 64) is not None
        assert h.may_omit(1, 64) is None


class TestOmission:
    def test_may_omit_requires_commit(self):
        _, h = make_handler()
        h.on_store(0, 0, 64, [1, 0, 0])
        assert h.may_omit(0, 64) is None
        h.on_checkpoint()
        assert h.may_omit(0, 64) is not None
        assert h.omissions == 1
        assert h.omission_lookups == 2

    def test_plain_store_masks_committed_entry(self):
        _, h = make_handler()
        h.on_store(0, 0, 64, [1, 0, 0])   # assoc in interval k
        h.on_checkpoint()
        h.on_store(0, 99, 64, [1])        # plain store in interval k+1
        h.on_checkpoint()
        # Value at the latest checkpoint came from the plain store.
        assert h.may_omit(0, 64) is None

    def test_generation_expiry(self):
        _, h = make_handler()
        h.on_store(0, 0, 64, [1, 0, 0])
        h.on_checkpoint()
        h.on_checkpoint()
        assert h.may_omit(0, 64) is not None  # 2 generations back: ok
        h.on_checkpoint()
        assert h.may_omit(0, 64) is None      # expired

    def test_operand_buffer_released_on_expiry(self):
        cfg, h = make_handler(capacity=8)
        for gen in range(6):
            h.on_store(0, 0, gen * 8, [gen, 0, 0])
            h.on_checkpoint()
        # 1 operand word per entry; only open + 2 committed gens retained.
        assert h.operand_buffers[0].words <= 3

    def test_reassociation_does_not_leak_operand_words(self):
        _, h = make_handler()
        for i in range(100):
            h.on_store(0, 0, 64, [i, 0, 0])
        assert h.operand_buffers[0].words == 1


class TestRecoveryHandler:
    def test_recompute_and_writeback(self):
        handler = AcrRecoveryHandler()
        log = IntervalLog(1)
        log.add_omitted(
            8, AddrMapEntry(8, plus_slice(0, 5), (10,)), core=0, ground_truth=15
        )
        mem = MemoryImage(0)
        values = handler.recompute_omitted([log], mem)
        assert values == {8: 15}
        assert mem.read(8) == 15
        assert handler.stats.values == 1
        assert handler.stats.instructions == 2

    def test_oldest_log_wins(self):
        handler = AcrRecoveryHandler()
        newer = IntervalLog(2)
        newer.add_omitted(
            8, AddrMapEntry(8, plus_slice(0, 1), (0,)), core=0, ground_truth=1
        )
        older = IntervalLog(1)
        older.add_omitted(
            8, AddrMapEntry(8, plus_slice(0, 2), (0,)), core=0, ground_truth=2
        )
        values = handler.recompute_omitted([newer, older])
        assert values[8] == 2


class TestConstruction:
    def test_table_count_mismatch_rejected(self):
        cfg = MachineConfig(num_cores=4)
        with pytest.raises(ValueError):
            AcrCheckpointHandler(cfg, [SliceTable()])

    def test_slice_for_site(self):
        _, h = make_handler()
        assert h.slice_for_site(0, 0) is not None
        assert h.slice_for_site(0, 1) is None
