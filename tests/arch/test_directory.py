"""Tests for repro.arch.directory."""

from repro.arch.directory import Directory


class TestLogBits:
    def test_first_set_returns_false(self):
        d = Directory(4)
        assert d.test_and_set_log(64) is False
        assert d.test_and_set_log(64) is True

    def test_distinct_addresses_independent(self):
        d = Directory(4)
        d.test_and_set_log(0)
        assert d.test_and_set_log(8) is False

    def test_clear_returns_count(self):
        d = Directory(4)
        for a in (0, 8, 16):
            d.test_and_set_log(a)
        assert d.logged_addresses == 3
        assert d.clear_log_bits() == 3
        assert d.test_and_set_log(0) is False

    def test_log_bit_query(self):
        d = Directory(4)
        assert not d.log_bit(0)
        d.test_and_set_log(0)
        assert d.log_bit(0)


class TestCommunicationTracking:
    def test_no_edges_initially(self):
        d = Directory(4)
        groups = d.communication_groups()
        assert len(groups) == 4
        assert all(len(g) == 1 for g in groups)

    def test_shared_line_creates_edge(self):
        d = Directory(4)
        d.record_access(0, 100)
        d.record_access(1, 100)
        groups = d.communication_groups()
        assert frozenset({0, 1}) in groups
        assert len(groups) == 3

    def test_same_core_no_edge(self):
        d = Directory(4)
        d.record_access(0, 100)
        d.record_access(0, 100)
        assert d.edge_count == 0

    def test_transitive_closure(self):
        d = Directory(4)
        d.record_access(0, 1)
        d.record_access(1, 1)
        d.record_access(1, 2)
        d.record_access(2, 2)
        groups = d.communication_groups()
        assert frozenset({0, 1, 2}) in groups

    def test_all_cores_union(self):
        d = Directory(8)
        d.record_access(0, 1)
        d.record_access(1, 1)
        union = set()
        for g in d.communication_groups():
            union |= g
        assert union == set(range(8))

    def test_clear_interval_tracking(self):
        d = Directory(4)
        d.record_access(0, 1)
        d.record_access(1, 1)
        d.clear_interval_tracking()
        assert d.edge_count == 0
        assert all(len(g) == 1 for g in d.communication_groups())

    def test_groups_disjoint(self):
        d = Directory(6)
        d.record_access(0, 1)
        d.record_access(1, 1)
        d.record_access(2, 2)
        d.record_access(3, 2)
        groups = d.communication_groups()
        seen = set()
        for g in groups:
            assert not (seen & g)
            seen |= g

    def test_ping_pong_edges_deduplicated(self):
        d = Directory(4)
        for _ in range(5):
            d.record_access(0, 7)
            d.record_access(1, 7)
        assert d.edge_count == 1
