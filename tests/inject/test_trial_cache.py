"""Satellite: corrupt-cache quarantine for the injection-trial schema.

A corrupt per-trial cache blob — truncated write, hand edit, schema
drift, or a run-result envelope aliased under a trial key — must read as
a *miss* (re-execute and overwrite), quarantine the file, and never
crash the campaign.
"""

import json

import pytest

from repro.experiments.cache import (
    KIND_RUN,
    KIND_TRIAL,
    ResultCache,
    run_cache_key,
    trial_cache_key,
)
from repro.experiments.runner import ExperimentRunner
from repro.inject.harness import TrialSpec, run_trial

SPEC = TrialSpec(workload="cg", seed=0)


@pytest.fixture
def warm(tmp_path):
    """A cache directory holding one genuine trial entry."""
    runner = ExperimentRunner(cache_dir=tmp_path / "c")
    results = runner.run_trials([SPEC])
    return tmp_path / "c", results[0]


def entry_path(cache_dir):
    return ResultCache(cache_dir).path_for(trial_cache_key(SPEC))


class TestTrialKeying:
    def test_key_is_stable_and_spec_sensitive(self):
        assert trial_cache_key(SPEC) == trial_cache_key(SPEC)
        other = TrialSpec(workload="cg", seed=1)
        assert trial_cache_key(SPEC) != trial_cache_key(other)

    def test_kind_mismatch_reads_as_miss(self, warm):
        cache_dir, _ = warm
        cache = ResultCache(cache_dir)
        key = trial_cache_key(SPEC)
        # The genuine trial payload under the right key but asked for as
        # a run result — the kind discriminator must refuse it.
        assert cache.load_payload(key, KIND_RUN) is None
        assert not cache.path_for(key).exists()


class TestCorruptTrialBlobs:
    @pytest.mark.parametrize(
        "garbage",
        [
            "",                       # truncated to nothing
            "{not json",              # undecodable
            '"just a string"',        # wrong envelope shape
            json.dumps({"schema": 999}),          # schema drift
            json.dumps({"spec": {}, "outcome": "recovered-exact"}),
        ],
        ids=["empty", "notjson", "string", "drift", "bare-payload"],
    )
    def test_quarantined_and_recomputed(self, warm, garbage):
        cache_dir, genuine = warm
        path = entry_path(cache_dir)
        path.write_text(garbage)

        runner = ExperimentRunner(cache_dir=cache_dir)
        results = runner.run_trials([SPEC])
        # Never a crash; the miss was reported and the trial re-executed.
        assert runner.progress.disk_misses == 1
        assert runner.progress.simulated == 1
        assert results[0] == genuine
        # The corrupt file was quarantined, then overwritten by the
        # fresh result — so the entry on disk is valid again.
        assert json.loads(path.read_text())["kind"] == KIND_TRIAL

    def test_valid_envelope_corrupt_trial_payload(self, warm):
        # The nastiest case: the envelope passes every cache-level check
        # (schema, key echo, kind) but the trial payload inside violates
        # the result schema — decode happens runner-side and must still
        # quarantine + miss.
        cache_dir, genuine = warm
        path = entry_path(cache_dir)
        envelope = json.loads(path.read_text())
        envelope["result"]["outcome"] = "diverged"  # count stays 0: invalid
        path.write_text(json.dumps(envelope))

        runner = ExperimentRunner(cache_dir=cache_dir)
        results = runner.run_trials([SPEC])
        assert results[0] == genuine
        assert runner.progress.simulated == 1
        assert json.loads(path.read_text()) != envelope

    def test_run_entry_never_serves_trials(self, tmp_path):
        # Simulation results and trial results share the cache root; a
        # (hypothetically colliding) run entry must not decode as a
        # trial.  Forge one under the trial's key to prove the guard.
        cache = ResultCache(tmp_path / "c")
        key = trial_cache_key(SPEC)
        cache.store_payload(key, {"anything": 1}, KIND_RUN)
        assert cache.load_payload(key, KIND_TRIAL) is None
        assert not cache.path_for(key).exists()


class TestRunKeysUnaffected:
    def test_run_and_trial_keys_disjoint(self, tmp_path):
        # Same cache, both kinds stored: each loader sees only its own.
        from repro.arch.config import MachineConfig
        from repro.experiments.configs import ConfigRequest

        rkey = run_cache_key(
            "cg", ConfigRequest("NoCkpt"), MachineConfig(num_cores=2),
            0.05, 2,
        )
        tkey = trial_cache_key(SPEC)
        assert rkey != tkey
        cache = ResultCache(tmp_path / "c")
        cache.store_payload(tkey, run_trial(SPEC).to_dict(), KIND_TRIAL)
        assert cache.load(tkey) is None          # not a run result
        assert cache.load_payload(rkey, KIND_RUN) is None  # plain miss
