"""The two-checkpoint retention theorem (paper §II-A), as a property.

If the error-detection latency never exceeds the checkpoint period, then
for any error the safe checkpoint is at worst the *second most recent*
checkpoint established before detection — which is exactly why the BER
baseline retains two checkpoints and why the AddrMap keeps two committed
generations.
"""

from hypothesis import given, settings, strategies as st

from repro.errors.detection import choose_safe_checkpoint
from repro.errors.model import ErrorModel


@given(
    st.floats(min_value=10.0, max_value=10_000.0),   # period
    st.integers(min_value=1, max_value=50),          # checkpoints
    st.floats(min_value=0.0, max_value=1.0),         # latency fraction
    st.floats(min_value=0.0, max_value=1.0),         # error position
)
@settings(max_examples=300, deadline=None)
def test_two_checkpoints_always_suffice(period, n_ckpts, latency_frac, pos):
    ckpt_times = [period * (k + 1) for k in range(n_ckpts)]
    total = ckpt_times[-1]
    occurrence = ErrorModel(latency_frac).occurrence(pos * total, period)
    choice = choose_safe_checkpoint(occurrence, ckpt_times)

    # Checkpoints established before detection:
    existing = sum(1 for t in ckpt_times if t <= occurrence.detected_ns)
    # The safe checkpoint is within the two most recent existing ones
    # (index -1 = initial state, which only happens while < 2 exist).
    assert choice.checkpoint_index >= existing - 2
    assert choice.checkpoint_index <= existing - 1


@given(
    st.floats(min_value=10.0, max_value=10_000.0),
    st.integers(min_value=2, max_value=50),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=200, deadline=None)
def test_zero_latency_always_most_recent(period, n_ckpts, pos):
    ckpt_times = [period * (k + 1) for k in range(n_ckpts)]
    total = ckpt_times[-1]
    occurrence = ErrorModel(0.0).occurrence(pos * total, period)
    choice = choose_safe_checkpoint(occurrence, ckpt_times)
    existing = sum(1 for t in ckpt_times if t <= occurrence.detected_ns)
    assert choice.checkpoint_index == existing - 1
    assert not choice.skipped_corrupted
