"""Interval logs: the unit of incremental checkpointing.

One :class:`IntervalLog` covers one checkpoint interval and holds

* :class:`LogRecord` — old values actually written to the in-memory log
  (address + value: 16 bytes per record), and
* :class:`OmittedRecord` — values ACR *excluded* from the log because a
  committed AddrMap association proves them recomputable.  The record
  keeps the AddrMap entry (Slice + operand snapshot — on-chip state the
  hardware retains anyway) and, for verification only, the ground-truth
  old value the recomputation must reproduce.  The ground truth is never
  consulted by recovery itself; tests compare against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.arch.buffers import AddrMapEntry

__all__ = [
    "LOG_RECORD_BYTES",
    "VALUE_BYTES",
    "LogRecord",
    "OmittedRecord",
    "IntervalLog",
    "LogObserver",
]

#: One log record: 8-byte address + 8-byte old value.
LOG_RECORD_BYTES = 16
#: One data value (a word).
VALUE_BYTES = 8


@dataclass(frozen=True, slots=True)
class LogRecord:
    """Old value logged on the first modification of ``address``."""

    address: int
    old_value: int
    core: int


@dataclass(frozen=True, slots=True)
class OmittedRecord:
    """A first-modification whose old value ACR omitted from the log."""

    address: int
    entry: AddrMapEntry
    core: int
    #: Verification-only: what the recomputation must produce.
    ground_truth_old_value: int


#: Observability hook: called with ``(record, omitted)`` on every append
#: — the authoritative point where a first-modification either became
#: log traffic (``omitted=False``) or an ACR omission (``omitted=True``).
LogObserver = Callable[[Union[LogRecord, OmittedRecord], bool], None]


class IntervalLog:
    """Log of one checkpoint interval."""

    def __init__(
        self,
        interval_index: int,
        observer: Optional[LogObserver] = None,
    ) -> None:
        self.interval_index = interval_index
        self.records: List[LogRecord] = []
        self.omitted: List[OmittedRecord] = []
        self._observer = observer

    @property
    def observed(self) -> bool:
        """True when an observer is attached (engines inlining the append
        fast path must call :meth:`add_record`/:meth:`add_omitted` then)."""
        return self._observer is not None

    def add_record(self, address: int, old_value: int, core: int) -> None:
        """Log an old value (baseline path)."""
        rec = LogRecord(address, old_value, core)
        self.records.append(rec)
        if self._observer is not None:
            self._observer(rec, False)

    def add_omitted(
        self, address: int, entry: AddrMapEntry, core: int, ground_truth: int
    ) -> None:
        """Record an ACR omission (the log write is skipped)."""
        rec = OmittedRecord(address, entry, core, ground_truth)
        self.omitted.append(rec)
        if self._observer is not None:
            self._observer(rec, True)

    # -- sizes ---------------------------------------------------------------
    @property
    def logged_bytes(self) -> int:
        """Bytes actually written to the in-memory log."""
        return len(self.records) * LOG_RECORD_BYTES

    @property
    def omitted_bytes(self) -> int:
        """Bytes the baseline would have logged but ACR skipped."""
        return len(self.omitted) * LOG_RECORD_BYTES

    @property
    def baseline_bytes(self) -> int:
        """What the log would weigh without ACR."""
        return self.logged_bytes + self.omitted_bytes

    @property
    def handled_addresses(self) -> int:
        """Unique first-modified addresses in the interval."""
        return len(self.records) + len(self.omitted)

    def records_per_core(self) -> Dict[int, int]:
        """Logged-record count per core (drives per-controller traffic)."""
        out: Dict[int, int] = {}
        for rec in self.records:
            out[rec.core] = out.get(rec.core, 0) + 1
        return out

    def omitted_per_core(self) -> Dict[int, int]:
        """Omitted-value count per core."""
        out: Dict[int, int] = {}
        for rec in self.omitted:
            out[rec.core] = out.get(rec.core, 0) + 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IntervalLog(#{self.interval_index}, logged={len(self.records)}, "
            f"omitted={len(self.omitted)})"
        )
