"""Technology-scaling error-rate model (paper Fig. 1).

Fig. 1 plots the *relative component error rate* under "8 % degradation
per bit per generation" (Borkar, IEEE Micro'05): each technology generation
multiplies a component's error rate by (1 + 0.08)^bits-growth; normalised
to the oldest node, the relative rate across g generations is
``(1 + degradation)^g`` per bit, compounded with the growth in bits per
component.  We reproduce the figure's exponential shape and expose the
system-level error probability used to motivate checkpointing frequency.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.util.validation import check_in_range, check_non_negative, check_positive

__all__ = [
    "TECHNOLOGY_NODES",
    "relative_error_rate",
    "component_error_rate_series",
    "system_error_probability",
    "expected_errors",
]

#: Successive CMOS nodes (nm), oldest first — one *generation* per step.
TECHNOLOGY_NODES: Tuple[int, ...] = (180, 130, 90, 65, 45, 32, 22, 16, 11)

#: Borkar's figure: 8 % degradation per bit per generation.
DEFAULT_DEGRADATION = 0.08


def relative_error_rate(
    generations: int, degradation: float = DEFAULT_DEGRADATION, bits_growth: float = 2.0
) -> float:
    """Relative component error rate after ``generations`` node steps.

    Per-bit degradation compounds by ``(1+degradation)`` per generation and
    the number of bits per fixed-area component grows by ``bits_growth``
    per generation (Moore scaling), so the component-level relative rate is
    ``((1+degradation) * bits_growth)^g / bits_growth^g``-normalised — i.e.
    per *component of constant function*, rate ∝ (1+degradation)^g, and per
    *component of constant area*, rate ∝ ((1+degradation)·bits_growth)^g.
    We report the constant-function component rate, matching Fig. 1's
    modest exponential.
    """
    check_non_negative("generations", generations)
    check_in_range("degradation", degradation, 0.0, 1.0)
    check_positive("bits_growth", bits_growth)
    return (1.0 + degradation) ** generations


def component_error_rate_series(
    nodes: Sequence[int] = TECHNOLOGY_NODES,
    degradation: float = DEFAULT_DEGRADATION,
) -> List[Tuple[int, float]]:
    """(node_nm, relative rate) pairs — the Fig. 1 series."""
    return [
        (node, relative_error_rate(g, degradation)) for g, node in enumerate(nodes)
    ]


def system_error_probability(
    component_rate_per_s: float, num_components: int, duration_s: float
) -> float:
    """Probability of at least one error system-wide within ``duration_s``.

    Independent Poisson components: ``1 − exp(−λ·n·t)``.  This is the
    "more components ⇒ higher system error probability" argument from the
    paper's introduction.
    """
    check_non_negative("component_rate_per_s", component_rate_per_s)
    check_positive("num_components", num_components)
    check_non_negative("duration_s", duration_s)
    return 1.0 - math.exp(-component_rate_per_s * num_components * duration_s)


def expected_errors(
    component_rate_per_s: float, num_components: int, duration_s: float
) -> float:
    """Expected number of errors system-wide within ``duration_s``."""
    check_non_negative("component_rate_per_s", component_rate_per_s)
    check_positive("num_components", num_components)
    check_non_negative("duration_s", duration_s)
    return component_rate_per_s * num_components * duration_s
