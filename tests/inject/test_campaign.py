"""Tests for repro.inject.campaign and ExperimentRunner.run_trials."""

import json

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.inject.campaign import CampaignReport, build_trials, run_campaign
from repro.inject.harness import TrialSpec, run_trial


def small_specs(trials=4, **kw):
    return build_trials(["cg", "dc"], trials=trials, **kw)


class TestBuildTrials:
    def test_count_is_per_configuration(self):
        specs = small_specs(trials=5)
        assert len(specs) == 10
        assert sum(1 for s in specs if s.config == "ACR") == 5
        assert sum(1 for s in specs if s.config == "BER") == 5

    def test_rotation_covers_workloads_and_targets(self):
        specs = build_trials(["cg", "dc"], trials=8)
        acr = [s for s in specs if s.config == "ACR"]
        assert {s.workload for s in acr} == {"cg", "dc"}
        assert {s.target for s in acr} == {"mem", "log", "addrmap", "arch"}

    def test_rotation_covers_every_workload_target_pair(self):
        # Regression: a shared `i mod ·` rotation over equal-length
        # workload and target lists only ever visits pairs congruent
        # mod gcd(W, T) — with W = T = 4, 4 of the 16 pairs.  The
        # decoupled rotation must cover the full product by W * T.
        workloads = ["bt", "cg", "dc", "ft"]
        specs = build_trials(workloads, trials=16, configs=["ACR"])
        pairs = {(s.workload, s.target) for s in specs}
        assert pairs == {
            (w, t) for w in workloads
            for t in ("mem", "log", "addrmap", "arch")
        }

    def test_seeds_distinct_and_based(self):
        specs = build_trials(["cg"], trials=4, seed=100)
        acr = [s for s in specs if s.config == "ACR"]
        assert [s.seed for s in acr] == [100, 101, 102, 103]
        # The memory image uses the campaign seed for every trial, so
        # all trials of one (workload, config) share a golden pass.
        assert all(s.memory_seed == 100 for s in acr)

    def test_same_seed_across_configs(self):
        # BER and ACR trial i share the seed: the sweep compares the two
        # mechanisms under identical faults, not different ones.
        specs = small_specs(trials=3)
        by_config = {}
        for s in specs:
            by_config.setdefault(s.config, []).append(s.seed)
        assert by_config["BER"] == by_config["ACR"]

    def test_knobs_propagate(self):
        specs = build_trials(
            ["cg"], trials=1, iters_per_step=24,
            detection_latency_fraction=1.0, defect="misorder-logs",
        )
        assert all(s.iters_per_step == 24 for s in specs)
        assert all(s.defect == "misorder-logs" for s in specs)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            build_trials([], trials=1)
        with pytest.raises(ValueError):
            build_trials(["cg"], trials=0)
        with pytest.raises(ValueError):
            build_trials(["cg"], trials=1, targets=[])


class TestRunTrials:
    def test_results_in_input_order_and_memoised(self):
        runner = ExperimentRunner()
        specs = small_specs(trials=2)
        first = runner.run_trials(specs)
        assert [r.spec for r in first] == specs
        before = runner.progress.memo_hits
        again = runner.run_trials(specs)
        assert again == first
        assert runner.progress.memo_hits == before + len(specs)

    def test_parallel_matches_serial(self):
        specs = small_specs(trials=3)
        serial = ExperimentRunner().run_trials(specs, jobs=1)
        parallel = ExperimentRunner().run_trials(specs, jobs=2)
        assert [r.to_dict() for r in parallel] == [
            r.to_dict() for r in serial
        ]

    def test_warm_cache_identical_and_no_reexecution(self, tmp_path):
        specs = small_specs(trials=2)
        cold_runner = ExperimentRunner(cache_dir=tmp_path / "c")
        cold = run_campaign(cold_runner, specs)
        warm_runner = ExperimentRunner(cache_dir=tmp_path / "c")
        warm = run_campaign(warm_runner, specs)
        assert warm.to_json_dict() == cold.to_json_dict()
        assert warm_runner.progress.simulated == 0
        assert warm_runner.progress.disk_hits == len(specs)

    def test_trial_cache_does_not_collide_with_run_cache(self, tmp_path):
        # Both kinds share one cache directory; a campaign must not
        # disturb simulation results (and vice versa).
        runner = ExperimentRunner(
            num_cores=2, region_scale=0.05, reps=2,
            cache_dir=tmp_path / "c",
        )
        base = runner.baseline("cg")
        run_campaign(runner, small_specs(trials=1))
        fresh = ExperimentRunner(
            num_cores=2, region_scale=0.05, reps=2,
            cache_dir=tmp_path / "c",
        )
        assert fresh.baseline("cg").to_dict() == base.to_dict()
        assert fresh.progress.simulated == 0


class TestCampaignReport:
    def test_tallies_and_ok(self):
        results = [run_trial(s) for s in small_specs(trials=2)]
        report = CampaignReport(results)
        assert report.ok
        assert report.diverged == 0
        for tally in report.tallies.values():
            assert tally.trials == 2
            assert tally.recovered_exact == 2
            assert tally.detected == 2

    def test_summary_table_lists_configs(self):
        report = CampaignReport([run_trial(s) for s in small_specs(2)])
        table = report.summary_table()
        assert "ACR" in table and "BER" in table
        assert "recovered-exact" in table
        assert "bit-exactly" in report.verdict_line()

    def test_divergent_trials_surface_in_report(self):
        # dc + skip-recompute is a known-diverging combination (see
        # test_defects); the report must carry its provenance.
        specs = build_trials(
            ["dc"], trials=4, configs=["ACR"], targets=["mem"],
            seed=1, defect="skip-recompute",
        )
        report = CampaignReport([run_trial(s) for s in specs])
        assert not report.ok
        assert report.diverged >= 1
        assert "FAILED" in report.verdict_line()
        doc = report.to_json_dict()
        assert doc["ok"] is False
        assert doc["outcomes"]["diverged"] == report.diverged
        assert len(doc["divergent"]) == report.diverged
        first = doc["divergent"][0]
        assert first["divergences"][0]["address"] > 0

    def test_unknown_outcome_counted_not_crashed(self):
        # Regression: to_json_dict() used to KeyError on any outcome
        # outside OUTCOMES; a newer producer's vocabulary must land
        # under its own key instead of crashing the report writer.
        import dataclasses

        base = run_trial(TrialSpec(workload="cg"))
        odd = dataclasses.replace(base, outcome="quarantined")
        report = CampaignReport([base, odd])
        doc = report.to_json_dict()
        assert doc["outcomes"]["recovered-exact"] == 1
        assert doc["outcomes"]["quarantined"] == 1
        assert doc["outcomes"]["diverged"] == 0

    def test_json_report_is_valid_json(self, tmp_path):
        report = CampaignReport([run_trial(s) for s in small_specs(1)])
        out = tmp_path / "report.json"
        report.write_json(out)
        doc = json.loads(out.read_text())
        assert doc["ok"] is True
        assert doc["trials"] == 2
        assert set(doc["configs"]) == {"ACR", "BER"}
