"""Plain-text table rendering for experiment reports.

The benchmark harness prints every reproduced paper table/figure as an
ASCII table; this module is the single formatting path so that all reports
look alike.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_percent"]


def format_percent(value: float, digits: int = 2) -> str:
    """Format a fraction (0.1234) as a percentage string ("12.34%")."""
    return f"{value * 100:.{digits}f}%"


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are rendered with two decimals; everything else via ``str``.
    Returns the table as a single string (no trailing newline).
    """
    str_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
