"""ACR's on-chip bookkeeping structures: AddrMap and operand buffer.

The AddrMap records ``<memory address, Slice, operand snapshot>``
associations produced by ``ASSOC-ADDR`` instructions.  Entries must cover
the **two most recent checkpoints** (error-detection latency ≤ checkpoint
period ⇒ recovery may target the second-most-recent checkpoint), so the
structure is generation-managed:

* the *open* generation collects associations made during the current
  interval (they describe values live at the *next* checkpoint);
* on a checkpoint, the open generation is *committed* and a fresh one
  opens; the two youngest committed generations are retained.

An association is usable for omitting a log record only once committed:
during interval ``k+1`` the first overwrite of address ``A`` may skip
logging iff a committed entry for ``A`` proves the old value (the one live
at checkpoint ``k``) recomputable.

Correctness subtlety — tombstones: when a *plain* (non-ASSOC) store
overwrites ``A``, the value live at the next checkpoint is no longer the
one any recorded Slice recomputes.  Removing the open-generation entry is
not enough, because a committed entry from an older generation would still
match on lookup and wrongly justify an omission.  The open generation
therefore records a *tombstone* for ``A`` (hardware: an associative entry
with the recomputable bit cleared); lookups scan generations youngest-first
and a tombstone terminates the search.  Tombstones do not count against
the entry capacity.

Capacity is finite; a full open generation rejects new associations (the
store is then checkpointed normally), which the AddrMap-capacity ablation
bench exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.slices import Slice
from repro.util.validation import check_positive

__all__ = ["AddrMapEntry", "AddrMap", "OperandBuffer", "make_generation"]


@dataclass(frozen=True, slots=True)
class AddrMapEntry:
    """One association: the value at ``address`` is recomputable via
    ``slice_`` applied to ``operands``."""

    address: int
    slice_: Slice
    operands: Tuple[int, ...]


class _Generation:
    """Entries and tombstones recorded during one checkpoint interval."""

    __slots__ = ("entries", "tombstones")

    def __init__(self) -> None:
        self.entries: Dict[int, AddrMapEntry] = {}
        self.tombstones: Set[int] = set()


def make_generation(
    entries: List[Tuple[int, AddrMapEntry]], tombstones: Set[int]
) -> _Generation:
    """Build one generation from explicit state (snapshot restore).

    ``entries`` is an *ordered* ``(address, entry)`` list — insertion
    order is preserved because lookups and the fault-injection harness
    iterate ``entries.values()`` and the order is part of captured
    state.
    """
    gen = _Generation()
    for address, entry in entries:
        gen.entries[address] = entry
    gen.tombstones.update(tombstones)
    return gen


class AddrMap:
    """Generation-managed <address, Slice, operands> map."""

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.capacity = capacity
        self._open = _Generation()
        self._committed: List[_Generation] = []
        self.records = 0
        self.rejections = 0

    # -- during an interval -------------------------------------------------
    def record(self, entry: AddrMapEntry) -> bool:
        """Record an association from an ``ASSOC-ADDR`` execution.

        Re-associating an address already present in the open generation
        replaces the entry (the newest store defines the value live at the
        next checkpoint).  Returns ``False`` when the open generation is
        full and the address is new — the caller must then fall back to
        normal checkpointing for this value.
        """
        gen = self._open
        if entry.address not in gen.entries and len(gen.entries) >= self.capacity:
            self.rejections += 1
            return False
        gen.tombstones.discard(entry.address)
        gen.entries[entry.address] = entry
        self.records += 1
        return True

    def open_entry(self, address: int) -> Optional[AddrMapEntry]:
        """The open-generation entry for ``address``, if any."""
        return self._open.entries.get(address)

    def invalidate(self, address: int) -> None:
        """A plain store overwrote ``address``: mask any association.

        Drops the open-generation entry and plants a tombstone so that
        older committed entries cannot satisfy future lookups.
        """
        gen = self._open
        gen.entries.pop(address, None)
        gen.tombstones.add(address)

    def internal_state(self) -> Tuple[_Generation, List[_Generation]]:
        """``(open_generation, committed_generations)`` for engines that
        inline :meth:`invalidate` / :meth:`committed_lookup`.

        Generations rotate at checkpoint boundaries (``commit_generation``
        rebinds the open generation), so callers must re-fetch this
        between checkpoint intervals; the committed *list* is mutated in
        place and stays valid.
        """
        return self._open, self._committed

    def restore_generations(
        self, open_gen: _Generation, committed: List[_Generation]
    ) -> None:
        """Replace the generation state wholesale (snapshot restore).

        The inverse of reading :meth:`internal_state`: engines holding
        references from a previous ``internal_state()`` call must
        re-fetch, exactly as across a ``commit_generation``.
        """
        if len(committed) > 2:
            raise ValueError(
                f"at most 2 committed generations are retained, "
                f"got {len(committed)}"
            )
        self._open = open_gen
        self._committed = list(committed)

    def committed_lookup(self, address: int) -> Optional[AddrMapEntry]:
        """Youngest committed knowledge about ``address``.

        Scans committed generations youngest-first; an entry means "the
        value live at the last checkpoint is recomputable via this Slice",
        a tombstone means "a plain store defined it — not recomputable".
        Returns ``None`` in the tombstone / unknown cases.
        """
        for gen in reversed(self._committed):
            entry = gen.entries.get(address)
            if entry is not None:
                return entry
            if address in gen.tombstones:
                return None
        return None

    # -- at checkpoint boundaries ----------------------------------------------
    def commit_generation(self) -> None:
        """Checkpoint established: commit the open generation.

        Keeps the two youngest committed generations (matching the
        two-checkpoint retention of the underlying BER scheme).
        """
        self._committed.append(self._open)
        self._open = _Generation()
        if len(self._committed) > 2:
            self._committed.pop(0)

    def entries_for_checkpoint(self, generations_back: int = 1) -> List[AddrMapEntry]:
        """Entries recorded in a retained generation (1 = youngest)."""
        if generations_back < 1 or generations_back > len(self._committed):
            return []
        return list(self._committed[-generations_back].entries.values())

    # -- fault-injection access ----------------------------------------------
    def committed_entries(self) -> List[AddrMapEntry]:
        """Every entry across retained committed generations, youngest
        generation first (the order :meth:`committed_lookup` scans).

        Used by the fault-injection harness to pick operand snapshots to
        corrupt; lookups are unaffected.
        """
        out: List[AddrMapEntry] = []
        for gen in reversed(self._committed):
            out.extend(gen.entries.values())
        return out

    def swap_committed(self, old: AddrMapEntry, new: AddrMapEntry) -> bool:
        """Replace one committed entry *object* with another (same address).

        Models a bit flip inside the stored operand snapshot: the entry's
        identity changes but its lookup key does not.  Matching is by
        object identity — two distinct associations can be field-equal.
        Returns ``False`` when ``old`` is not resident (already expired).
        """
        if new.address != old.address:
            raise ValueError("swap_committed must preserve the address key")
        for gen in reversed(self._committed):
            if gen.entries.get(old.address) is old:
                gen.entries[old.address] = new
                return True
        return False

    @property
    def open_size(self) -> int:
        """Entries in the open generation (tombstones excluded)."""
        return len(self._open.entries)

    @property
    def committed_size(self) -> int:
        """Entries across retained committed generations."""
        return sum(len(g.entries) for g in self._committed)


class OperandBuffer:
    """Capacity accounting for Slice input operands.

    Operand values are stored inline in :class:`AddrMapEntry`; this class
    tracks the *word* budget they occupy so the capacity knob in
    :class:`~repro.arch.config.MachineConfig` is enforceable.  The peak
    occupancy statistic feeds the storage-complexity discussion.
    """

    def __init__(self, capacity_words: int) -> None:
        check_positive("capacity_words", capacity_words)
        self.capacity_words = capacity_words
        self.words = 0
        self.peak_words = 0
        self.rejections = 0

    def try_reserve(self, n_words: int) -> bool:
        """Reserve space for ``n_words`` operand words."""
        if self.words + n_words > self.capacity_words:
            self.rejections += 1
            return False
        self.words += n_words
        self.peak_words = max(self.peak_words, self.words)
        return True

    def release(self, n_words: int) -> None:
        """Release ``n_words`` (entries retired with their generation)."""
        self.words = max(0, self.words - n_words)
