"""The campaign daemon end to end: submissions over the socket, reports
bit-identical to solo runs, concurrent-client dedupe, frame streaming,
and shard recovery behind a live service.

Unix socket paths are capped around 100 bytes, so sockets live in a
short ``/tmp`` directory rather than pytest's deep ``tmp_path``.
"""

import json
import shutil
import signal
import socket
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.service import (
    CampaignClient,
    CampaignDaemon,
    CampaignSpec,
    ServiceError,
    campaign_report,
    wait_for_socket,
)
from repro.service.daemon import check_socket_path
from repro.service.protocol import decode_frame, encode_frame

chaos = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"),
    reason="chaos tests need SIGKILL",
)

_SHAPE = dict(num_cores=2, region_scale=0.05, reps=2)


def _spec(**overrides):
    kwargs = dict(workloads=("is",), configs=("Ckpt_NE",), **_SHAPE)
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def _solo_report(tmp_path, spec):
    runner = ExperimentRunner(
        num_cores=spec.num_cores, region_scale=spec.region_scale,
        reps=spec.reps, cache_dir=tmp_path / "solo",
    )
    return campaign_report(runner, spec)


@pytest.fixture()
def sock():
    short = Path(tempfile.mkdtemp(prefix="acrd."))
    yield short / "s.sock"
    shutil.rmtree(short, ignore_errors=True)


@pytest.fixture()
def daemon(tmp_path, sock):
    daemon = CampaignDaemon(
        tmp_path / "cache", sock, shards=4, replicas=2, jobs=1,
        heartbeat_s=0.1,
    )
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    assert wait_for_socket(sock, timeout_s=10.0)
    yield daemon
    daemon.stop()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


class TestSubmit:
    def test_report_bit_identical_to_solo_runner(self, daemon, sock,
                                                 tmp_path):
        spec = _spec()
        with CampaignClient(sock) as client:
            served = client.submit(spec)
        solo = _solo_report(tmp_path, spec)
        assert json.dumps(served, sort_keys=True) == json.dumps(
            solo, sort_keys=True
        )

    def test_repeat_submission_costs_zero_simulations(self, daemon, sock):
        spec = _spec()
        with CampaignClient(sock) as client:
            first = client.submit(spec)
            sims = client.ping()["simulations"]
            second = client.submit(spec)
            after = client.ping()["simulations"]
        assert first == second
        assert sims == 2  # NoCkpt + Ckpt_NE, exactly once
        assert after == sims

    def test_streamed_frames_arrive_with_the_result(self, daemon, sock):
        frames = []
        with CampaignClient(sock) as client:
            report = client.submit(
                _spec(), stream=True, on_frame=frames.append
            )
        assert report["runs"]
        assert frames, "stream=True produced no telemetry frames"
        assert all("frame" in doc for doc in frames)

    def test_bad_campaign_is_an_error_reply_not_a_crash(self, daemon,
                                                        sock):
        with CampaignClient(sock) as client:
            client._send({"op": "submit", "campaign": {"bogus": 1}})
            reply = client._recv()
            assert reply["op"] == "error"
            assert "bad campaign" in reply["message"]
            # The connection (and daemon) survive for real work.
            assert client.ping()["op"] == "status"


class TestConcurrentClients:
    def test_overlapping_sweeps_execute_each_key_exactly_once(
        self, daemon, sock
    ):
        # A and B overlap on the NoCkpt baseline and Ckpt_NE; B adds
        # ReCkpt_E.  Three unique canonical keys — and exactly three
        # simulations across both clients, however the leases land.
        spec_a = _spec()
        spec_b = _spec(configs=("Ckpt_NE", "ReCkpt_E"))
        barrier = threading.Barrier(2)
        reports, errors = {}, []

        def run(name, spec):
            try:
                with CampaignClient(sock) as client:
                    barrier.wait(timeout=10.0)
                    reports[name] = client.submit(spec)
            except Exception as exc:  # surfaced below
                errors.append((name, exc))

        threads = [
            threading.Thread(target=run, args=("a", spec_a)),
            threading.Thread(target=run, args=("b", spec_b)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300.0)
        assert not errors, errors
        assert daemon.simulations == 3
        # Shared rows agree byte-for-byte between the two reports.
        rows_b = {r["key"]: r for r in reports["b"]["runs"]}
        for row in reports["a"]["runs"]:
            assert rows_b[row["key"]] == row

    def test_concurrent_identical_sweeps_simulate_once(self, daemon,
                                                       sock):
        barrier = threading.Barrier(2)
        errors = []

        def run():
            try:
                with CampaignClient(sock) as client:
                    barrier.wait(timeout=10.0)
                    client.submit(_spec())
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=run) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300.0)
        assert not errors, errors
        assert daemon.simulations == 2  # NoCkpt + Ckpt_NE


class TestControlPlane:
    def test_ping_status_shape(self, daemon, sock):
        with CampaignClient(sock) as client:
            doc = client.ping()
        assert doc["op"] == "status"
        assert doc["store"]["shards"] == 4
        assert doc["store"]["alive"] == 4
        assert doc["campaigns"] == {"served": 0, "active": 0}
        assert doc["simulations"] == 0
        assert doc["quarantined"] == 0

    def test_malformed_wire_is_counted_and_survivable(self, daemon,
                                                      sock):
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(10.0)
        try:
            raw.connect(str(sock))
            raw.sendall(b"this is not a wire frame\n")
            raw.sendall(encode_frame({"op": "ping"}))
            buf = b""
            while b"\n" not in buf:
                buf += raw.recv(65536)
            reply = decode_frame(buf.split(b"\n", 1)[0])
        finally:
            raw.close()
        assert reply["op"] == "status"
        assert reply["wire_malformed"] >= 1

    def test_server_only_op_from_client_is_rejected(self, daemon, sock):
        with CampaignClient(sock) as client:
            client._send({"op": "accepted"})
            reply = client._recv()
        assert reply["op"] == "error"
        assert "accepted" in reply["message"]

    def test_watcher_sees_another_clients_campaign(self, daemon, sock):
        frames = []
        ready = threading.Event()

        def watch():
            with CampaignClient(sock, timeout_s=60.0) as watcher:
                watcher._send({"op": "watch"})
                assert watcher._recv()["op"] == "accepted"
                ready.set()
                watcher.watch(
                    frames.append, stop=lambda: len(frames) >= 1
                )

        thread = threading.Thread(target=watch, daemon=True)
        thread.start()
        assert ready.wait(timeout=10.0)
        with CampaignClient(sock) as client:
            client.submit(_spec())
        thread.join(timeout=60.0)
        assert frames, "watcher received no frames"

    def test_shutdown_stops_the_daemon(self, daemon, sock):
        with CampaignClient(sock) as client:
            client.shutdown()
        # The serve loop notices the stop flag within one heartbeat,
        # closes the listener and unlinks the socket file.
        deadline = time.monotonic() + 10.0
        while sock.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not daemon.running
        assert not sock.exists()
        assert not wait_for_socket(sock, timeout_s=0.3)

    def test_client_error_when_no_daemon(self, sock):
        with pytest.raises(ServiceError, match="cannot reach"):
            CampaignClient(sock).connect()

    def test_wait_for_socket_gives_up(self, sock):
        assert not wait_for_socket(sock, timeout_s=0.2)


class TestSocketPathGuard:
    def test_overlong_path_is_a_clear_error(self):
        with pytest.raises(ValueError, match="too long"):
            check_socket_path("/tmp/" + "x" * 200 + "/s.sock")

    def test_short_path_passes(self):
        assert check_socket_path("/tmp/ok.sock") == Path("/tmp/ok.sock")


@chaos
@pytest.mark.chaos
class TestServiceShardRecovery:
    def test_shard_kill_behind_live_daemon_recovers_and_serves(
        self, daemon, sock, tmp_path
    ):
        import os

        spec = _spec()
        with CampaignClient(sock) as client:
            first = client.submit(spec)
            # Kill the primary owner of a stored key, so recovery has
            # replicas to restore (an ownerless shard re-replicates 0).
            key = sorted(daemon.store.indexed_keys())[0]
            victim_sid = daemon.store.owners(key)[0]
            victim = daemon.store.shard_pids()[victim_sid]
            os.kill(victim, signal.SIGKILL)
            # The accept loop's heartbeat detects, respawns and
            # re-replicates without any client action.
            deadline = time.monotonic() + 10.0
            status = None
            while time.monotonic() < deadline:
                status = client.ping()["store"]
                if status["alive"] == 4 and status["shard_deaths"] >= 1:
                    break
                time.sleep(0.05)
            assert status["alive"] == 4
            assert status["shard_deaths"] >= 1
            assert status["rereplicated"] > 0
            assert not status["degraded"]
            sims = client.ping()["simulations"]
            second = client.submit(spec)
            assert client.ping()["simulations"] == sims
        assert first == second
        for key in daemon.store.indexed_keys():
            assert daemon.store.replica_count(key) == 2
        solo = _solo_report(tmp_path, spec)
        assert json.dumps(second, sort_keys=True) == json.dumps(
            solo, sort_keys=True
        )
