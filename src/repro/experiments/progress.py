"""Run observability: per-run timing, cache counters, summary table.

Every simulation the :class:`~repro.experiments.runner.ExperimentRunner`
performs — or serves from memory or disk — is recorded here, so a paper
regeneration can answer "where did the time go?" and tests can assert
the cache actually worked (e.g. a warm second pass serves ≥95% of runs
from disk).

Sources, in increasing cost order:

``memo``   — the in-process memo dictionary (free);
``disk``   — the persistent :class:`~repro.experiments.cache.ResultCache`;
``sim``    — a fresh simulation, executed in-process;
``worker`` — a fresh simulation, executed in a pool worker process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.util.tables import format_table

__all__ = ["RunRecord", "ProgressTracker"]

_SOURCES = ("disk", "sim", "worker")


@dataclass(frozen=True)
class RunRecord:
    """One observed run: what ran, where it came from, how long it took."""

    workload: str
    config: str
    source: str
    seconds: float
    #: True when the run carried an enabled tracer and/or a metrics
    #: registry — traced runs never come from (or go to) the cache.
    traced: bool = False

    def __post_init__(self) -> None:
        if self.source not in _SOURCES:
            raise ValueError(
                f"source must be one of {_SOURCES}, got {self.source!r}"
            )


@dataclass
class ProgressTracker:
    """Accumulates :class:`RunRecord` events plus cache hit/miss counters.

    ``echo`` (optional) receives one formatted line per event — the CLI
    wires it to stderr for live progress; tests leave it unset.
    """

    echo: Optional[Callable[[str], None]] = None
    records: List[RunRecord] = field(default_factory=list)
    memo_hits: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    events_captured: int = 0
    events_dropped: int = 0
    # Supervised-execution accounting (repro.resilience): a clean run
    # reports visible zeros, so silence is an assertion, not a gap.
    retried: int = 0
    timed_out: int = 0
    worker_deaths: int = 0
    degraded_to_serial: int = 0
    resumed: int = 0
    # Vector-engine coverage (iterations, summed over inline sims that
    # reported it): how much of the executed work replayed from plans
    # versus falling back to the classic loop.
    vector_replayed: int = 0
    vector_fallback: int = 0
    # Snapshot-fork accounting (repro.sim.snapshot): trials executed by
    # forking the shared golden pass instead of replaying from step 0.
    forked_trials: int = 0
    # Live-telemetry accounting (repro.obs.telemetry): set once at the
    # end of a campaign that ran with a CampaignTelemetry attached.
    # ``telemetry_attached`` keeps the zeros visible — a campaign that
    # streamed nothing reports that, it does not go silent.
    telemetry_frames: int = 0
    telemetry_snapshots: int = 0
    telemetry_attached: bool = False
    # Cache-corruption accounting: entries the ResultCache deleted after
    # a failed decode.  Always shown with a visible zero — a clean cache
    # is an assertion, not a gap.
    quarantined: int = 0

    # ------------------------------------------------------------------ events --
    def record(self, workload: str, config: str, source: str,
               seconds: float, traced: bool = False) -> None:
        """Record one completed run fetch/execution."""
        rec = RunRecord(workload, config, source, seconds, traced)
        self.records.append(rec)
        if source == "disk":
            self.disk_hits += 1
        if self.echo is not None:
            suffix = " +trace" if rec.traced else ""
            self.echo(
                f"[{rec.source:>6}] {rec.workload:>4} {rec.config:<14}"
                f" {rec.seconds * 1e3:9.1f} ms{suffix}"
            )

    def record_miss(self) -> None:
        """Count one disk-cache miss (the run will be simulated)."""
        self.disk_misses += 1

    def record_memo(self) -> None:
        """Count one in-process memo hit (free; not a timed record)."""
        self.memo_hits += 1

    def record_tracing(self, captured: int, dropped: int) -> None:
        """Accumulate one traced run's event capture/drop counts."""
        self.events_captured += captured
        self.events_dropped += dropped

    # -------------------------------------------------------------- resilience --
    def record_retry(self) -> None:
        """Count one supervised-task retry (any failure cause)."""
        self.retried += 1
        if self.echo is not None:
            self.echo("[retry ] supervised task re-queued")

    def record_timeout(self) -> None:
        """Count one watchdog-enforced wall-clock timeout."""
        self.timed_out += 1

    def record_worker_death(self) -> None:
        """Count one pool worker that died mid-task."""
        self.worker_deaths += 1

    def record_degraded(self) -> None:
        """Count one circuit-breaker trip (pool → serial execution)."""
        self.degraded_to_serial += 1
        if self.echo is not None:
            self.echo("[degrade] pool abandoned; continuing serially")

    def record_resumed(self, n: int = 1) -> None:
        """Count tasks skipped because the completion journal already
        holds them (``--resume``)."""
        self.resumed += n

    def record_vector_coverage(self, replayed: int, fallback: int) -> None:
        """Accumulate one vector-engine run's coverage counters."""
        self.vector_replayed += replayed
        self.vector_fallback += fallback

    def record_forked(self, n: int = 1) -> None:
        """Count trials executed on the forked-snapshot plan."""
        self.forked_trials += n

    def record_quarantine(self, n: int = 1) -> None:
        """Count cache entries quarantined (deleted as corrupt)."""
        self.quarantined += n
        if self.echo is not None:
            self.echo("[quarantine] corrupt cache entry deleted")

    def record_telemetry(self, frames: int, snapshots: int) -> None:
        """Record a finished campaign's telemetry totals (frame count
        and snapshot lines written) for the summary footer."""
        self.telemetry_attached = True
        self.telemetry_frames = frames
        self.telemetry_snapshots = snapshots

    # ----------------------------------------------------------------- queries --
    @property
    def total_runs(self) -> int:
        """All observed run fetches (any source)."""
        return len(self.records)

    @property
    def simulated(self) -> int:
        """Runs that actually executed a simulation."""
        return sum(1 for r in self.records if r.source in ("sim", "worker"))

    @property
    def hit_rate(self) -> float:
        """Fraction of disk lookups that hit (0.0 when none were made)."""
        lookups = self.disk_hits + self.disk_misses
        return self.disk_hits / lookups if lookups else 0.0

    @property
    def traced_runs(self) -> int:
        """Runs executed with observability attached."""
        return sum(1 for r in self.records if r.traced)

    def tracing_line(self) -> str:
        """One-line event-capture summary of every traced run."""
        return (
            f"trace: {self.events_captured} events captured / "
            f"{self.events_dropped} dropped"
        )

    def by_source(self) -> Dict[str, int]:
        """Event counts per source."""
        counts = {s: 0 for s in _SOURCES}
        for r in self.records:
            counts[r.source] += 1
        return counts

    def elapsed_seconds(self, source: Optional[str] = None) -> float:
        """Total recorded wall time, optionally for one source."""
        return sum(
            r.seconds for r in self.records
            if source is None or r.source == source
        )

    # ----------------------------------------------------------------- reports --
    def summary_line(self) -> str:
        """One-line fetch/execution summary (the campaign CLI footer)."""
        counts = self.by_source()
        parts = [f"memo {self.memo_hits}"] + [
            f"{src} {counts[src]}" for src in _SOURCES
        ]
        return (
            f"runs: {self.total_runs + self.memo_hits} "
            f"({', '.join(parts)}) in {self.elapsed_seconds():.2f}s"
        )

    def summary_table(self) -> str:
        """The observability summary the CLI prints after a regeneration."""
        counts = self.by_source()
        rows = [["memo", self.memo_hits, 0.0]]
        rows += [
            [src, counts[src], round(self.elapsed_seconds(src), 3)]
            for src in _SOURCES
        ]
        rows.append(["TOTAL", self.total_runs + self.memo_hits,
                     round(self.elapsed_seconds(), 3)])
        table = format_table(
            ["source", "runs", "seconds"], rows, title="run summary"
        )
        # Footer block: the labels are padded to one shared column so
        # the sections align however many are present (zeros included).
        footers: List[str] = []
        lookups = self.disk_hits + self.disk_misses
        if lookups:
            footers.append(
                f"disk cache: {self.disk_hits}/{lookups} hits "
                f"({100.0 * self.hit_rate:.1f}%)"
            )
        if self.events_captured or self.events_dropped:
            footers.append(self.tracing_line())
        if self.vector_replayed or self.vector_fallback:
            footers.append(self.vector_line())
        if self.forked_trials:
            footers.append(self.forked_line())
        footers.append(self.resilience_line())
        footers.append(self.cache_line())
        if self.telemetry_attached:
            footers.append(self.telemetry_line())
        width = max(len(line.split(":", 1)[0]) for line in footers)
        for line in footers:
            label, rest = line.split(":", 1)
            table += f"\n{label:<{width}}:{rest}"
        return table

    def vector_line(self) -> str:
        """One-line vector-engine coverage summary (inline sims only)."""
        total = self.vector_replayed + self.vector_fallback
        pct = 100.0 * self.vector_replayed / total if total else 0.0
        return (
            f"vector: {self.vector_replayed}/{total} iterations replayed "
            f"({pct:.1f}% coverage, {self.vector_fallback} fallback)"
        )

    def forked_line(self) -> str:
        """One-line snapshot-fork summary (executed trials only)."""
        return (
            f"snapshots: {self.forked_trials} trials forked from "
            f"golden boundaries"
        )

    def resilience_line(self) -> str:
        """One-line supervised-execution summary (zeros on clean runs)."""
        return (
            f"resilience: {self.retried} retried, {self.timed_out} timed "
            f"out, {self.worker_deaths} worker deaths, "
            f"{self.degraded_to_serial} degraded-to-serial, "
            f"{self.resumed} resumed from journal"
        )

    def cache_line(self) -> str:
        """One-line cache-integrity summary (zero on a healthy cache)."""
        return (
            f"cache: {self.quarantined} corrupt entries quarantined"
        )

    def telemetry_line(self) -> str:
        """One-line live-telemetry summary (only shown when a campaign
        ran with telemetry attached; zeros stay visible)."""
        return (
            f"telemetry: {self.telemetry_frames} frames streamed, "
            f"{self.telemetry_snapshots} snapshots written"
        )

    def reset(self) -> None:
        """Drop all records and counters (new measurement window)."""
        self.records.clear()
        self.memo_hits = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.events_captured = 0
        self.events_dropped = 0
        self.retried = 0
        self.timed_out = 0
        self.worker_deaths = 0
        self.degraded_to_serial = 0
        self.resumed = 0
        self.vector_replayed = 0
        self.vector_fallback = 0
        self.forked_trials = 0
        self.telemetry_frames = 0
        self.telemetry_snapshots = 0
        self.telemetry_attached = False
        self.quarantined = 0


class _Timer:
    """Tiny context helper: ``with _Timer() as t: ...; t.seconds``."""

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._t0
