"""Trace plans: precomputed per-kernel access streams for the vector engine.

A :class:`KernelPlan` captures everything about one kernel's execution
that does not depend on run state: the flat (iteration-major) address and
line streams of its memory accesses, the values its stores write, the
register file at every iteration boundary, and the *external* load
addresses whose values the plan assumed untouched.  Store values are a
pure function of the kernel body and the memory image's deterministic
initialiser **as long as** every external load address is still unwritten
when the kernel runs — the engine re-checks exactly that before using a
plan and falls back to the interpreter otherwise, which makes plans safe
to cache on the :class:`~repro.isa.program.Program` and share across
runs, configurations and engines.

Address streams and large-trip straight-line bodies are evaluated as
batched numpy operations (``uint64`` arithmetic wraps mod 2**64, matching
the ISA's masked semantics); small or irregular bodies go through a
*shape-keyed generated evaluator*: the body's structure (opcode/register
sequence, with immediates and access patterns externalised as
parameters) keys a cache of ``exec``-compiled specialised functions, so
the thousands of same-shape kernels a workload generator emits share one
evaluator with inlined ALU expressions and register locals.  The
generated code handles every case the interpreter does (in-kernel
aliasing through a store-forwarding overlay, loop-carried accumulators,
partially-defined registers).  First-touch reductions over the store stream
(:meth:`KernelPlan.first_store_occurrence`) expose, per store access,
whether it is the kernel-locally first write to its address — the
semantics the AddrMap/first-write unit tests pin.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple, cast
from weakref import WeakKeyDictionary

from repro.obs.telemetry.profile import phase as _phase

try:  # numpy accelerates large-trip plan evaluation; plans work without it
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less installs
    np = None  # type: ignore[assignment]

from repro.isa.instructions import AluInstr, LoadInstr, MoviInstr
from repro.isa.opcodes import MASK64, BINARY_SEMANTICS, Opcode
from repro.isa.program import Kernel, Program

__all__ = ["KernelPlan", "ProgramPlans", "plans_for"]

_INIT_MIX = 0x9E3779B97F4A7C15
if np is not None:
    _U64 = np.uint64
    _MIX_U64 = _U64(_INIT_MIX)
    _SHIFT29 = _U64(29)
    _SIX_THREE = _U64(63)

#: Below this trip count the per-array numpy dispatch overhead outweighs
#: the vector win and the scalar evaluator is used instead.
NUMPY_MIN_TRIP = 24

#: Reverse map from a binary-semantics function to its opcode (the op
#: cache stores functions; the numpy evaluator needs the opcode back).
_FUNC_TO_OPCODE = {fn: op for op, fn in BINARY_SEMANTICS.items()}


def _np_alu(op: Opcode, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized equivalent of :func:`repro.isa.opcodes.apply_alu`."""
    if op is Opcode.ADD:
        return a + b
    if op is Opcode.SUB:
        return a - b
    if op is Opcode.MUL:
        return a * b
    if op is Opcode.AND:
        return a & b
    if op is Opcode.OR:
        return a | b
    if op is Opcode.XOR:
        return a ^ b
    if op is Opcode.SHL:
        return a << (b & _SIX_THREE)
    if op is Opcode.SHR:
        return a >> (b & _SIX_THREE)
    raise ValueError(f"not a binary ALU opcode: {op}")  # pragma: no cover


def _initial_values(addrs: np.ndarray, seed: int) -> np.ndarray:
    """Vectorized :meth:`MemoryImage.initial_value` over a uint64 array."""
    x = addrs * _MIX_U64 + _U64(seed & MASK64)
    x = x ^ (x >> _SHIFT29)
    return x * _MIX_U64


def ops_for_kernel(program: Program, kernel_index: int) -> Tuple[int, List[tuple]]:
    """The interpreter's precompiled ``(width, ops)`` for one kernel.

    Fills ``program.op_cache`` with the exact format
    :meth:`Interpreter._prepare_kernel` uses, so whichever engine touches
    a kernel first pays the (shared) precompile once.
    """
    cached = program.op_cache.get(kernel_index)
    if cached is not None:
        return cached
    kernel = program.kernels[kernel_index]
    width = 0
    ops: List[tuple] = []
    for ins in kernel.body:
        if isinstance(ins, AluInstr):
            width = max(width, ins.dst, ins.src_a, ins.src_b)
            ops.append((1, BINARY_SEMANTICS[ins.op], ins.dst, ins.src_a, ins.src_b))
        elif isinstance(ins, MoviInstr):
            width = max(width, ins.dst)
            ops.append((0, ins.dst, ins.imm & MASK64))
        elif isinstance(ins, LoadInstr):
            width = max(width, ins.dst)
            p = ins.pattern
            ops.append((2, ins.dst, p.base, p.stride, p.length, p.offset))
        else:  # StoreInstr
            width = max(width, ins.src)
            p = ins.pattern
            ops.append(
                (3, ins.src, p.base, p.stride, p.length, p.offset, ins.site, ins.assoc)
            )
    program.op_cache[kernel_index] = (width, ops)
    return width, ops


class KernelPlan:
    """One kernel's precomputed trace segments.

    ``addrs``/``lines`` hold all memory accesses iteration-major (body
    order within an iteration); ``svalues`` holds the store stream's new
    values, aligned with the stores of ``tmpl`` in the same order.
    """

    __slots__ = (
        "kernel",
        "tmpl",
        "accesses_per_iter",
        "stores_per_iter",
        "alu_per_iter",
        "loads_per_iter",
        "assoc_per_iter",
        "trip",
        "width",
        "addrs",
        "lines",
        "svalues",
        "external_loads",
        "store_flags",
        "store_sites",
        "overlap",
        "regs_stable",
        "has_assoc",
        "_rows",
        "_cols",
        "_acc_rows",
    )

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        #: Per body access: (is_store, site, assoc) — static per position.
        self.tmpl: Tuple[Tuple[bool, int, bool], ...] = ()
        self.accesses_per_iter = 0
        self.stores_per_iter = 0
        self.alu_per_iter = 0
        self.loads_per_iter = 0
        self.assoc_per_iter = 0
        self.trip = kernel.trip_count
        self.width = 0
        self.addrs: List[int] = []
        self.lines: List[int] = []
        self.svalues: List[int] = []
        self.external_loads: FrozenSet[int] = frozenset()
        #: Per body access: is it a store?  (The replay loop iterates
        #: this flat tuple instead of indexing ``tmpl``.)
        self.store_flags: Tuple[bool, ...] = ()
        #: Per body *store* (in order): its site id.
        self.store_sites: Tuple[int, ...] = ()
        #: The kernel both loads and stores some address.  Plan values are
        #: still exact against untouched memory, but a mid-kernel memory
        #: mutation (fault injection between segments) could be masked by
        #: the baked forwarding — such kernels always run interpreted.
        self.overlap = False
        self.regs_stable = True
        self.has_assoc = False
        self._rows: Optional[List[List[int]]] = None
        self._cols: Optional[Dict[int, object]] = None
        self._acc_rows: Optional[Tuple[tuple, ...]] = None

    # -- register rows --------------------------------------------------------
    def rows(self) -> Sequence[Sequence[int]]:
        """Register file at the end of each iteration (row sequences).

        Rows may be tuples (generated evaluators) or lists (numpy
        materialisation); consumers only index or copy them.

        ``rows()[i]`` is also the register file at the *start* of
        iteration ``i + 1`` — the state a mid-kernel fallback resumes
        from.  For numpy-evaluated kernels the rows are materialised
        lazily from the register columns on first use.
        """
        if self._rows is None:
            cols = self._cols
            assert cols is not None
            trip = self.trip
            materialised: List[List[object]] = [
                [0] * (self.width + 1) for _ in range(trip)
            ]
            for reg, col in cols.items():
                if getattr(col, "ndim", 0):  # numpy column (1-d array)
                    values = col.tolist()
                else:  # constant column (int or 0-d numpy scalar)
                    values = [col] * trip
                for i in range(trip):
                    materialised[i][reg] = values[i]
            self._rows = materialised  # type: ignore[assignment]
            self._cols = None
        return self._rows  # type: ignore[return-value]

    def access_rows(self) -> Tuple[tuple, ...]:
        """Per iteration: the access stream as ``(addr, line, is_store,
        value)`` 4-tuples (``value`` is ``None`` for loads).

        This is the replay engine's working form — one tuple unpack per
        access replaces three indexed fetches plus two stream cursors in
        the hot loop.  Materialised lazily once per plan and shared by
        every run that replays it.
        """
        cached = self._acc_rows
        if cached is None:
            addrs = self.addrs
            lines = self.lines
            svalues = self.svalues
            flags = self.store_flags
            out = []
            idx = 0
            s = 0
            for _ in range(self.trip):
                row = []
                for is_store in flags:
                    if is_store:
                        row.append((addrs[idx], lines[idx], True, svalues[s]))
                        s += 1
                    else:
                        row.append((addrs[idx], lines[idx], False, None))
                    idx += 1
                out.append(tuple(row))
            cached = self._acc_rows = tuple(out)
        return cached

    # -- first-touch reductions ----------------------------------------------
    def first_store_occurrence(self) -> List[bool]:
        """Per store access (kernel order): first write to its address?

        A first-touch reduction over the store stream: entry ``j`` is
        True iff store ``j`` is the kernel's first store to that
        address.  Interval-level first-write accounting composes this
        with the directory's log bits (an address already handled earlier
        in the interval is never "first" again until the boundary).
        """
        if not self.svalues:
            return []
        seen: set = set()
        out: List[bool] = []
        api = self.accesses_per_iter
        for i in range(self.trip):
            base = i * api
            for off, (is_store, _, _) in enumerate(self.tmpl):
                if is_store:
                    addr = self.addrs[base + off]
                    out.append(addr not in seen)
                    seen.add(addr)
        return out

    def unique_store_addresses(self) -> List[int]:
        """Sorted unique store addresses (first-write footprint)."""
        if self.stores_per_iter == 0:
            return []
        return sorted(
            {
                int(self.addrs[i * self.accesses_per_iter + off])
                for i in range(self.trip)
                for off, (is_store, _, _) in enumerate(self.tmpl)
                if is_store
            }
        )

    def unique_lines(self) -> List[int]:
        """Sorted unique cache lines the kernel touches (loads + stores)."""
        return sorted({int(line) for line in self.lines})


def _kernel_shape(
    kernel: Kernel,
) -> Tuple[
    int,
    tuple,
    Tuple[int, ...],
    Tuple[Tuple[bool, int, bool], ...],
    int,
    int,
    int,
    int,
    bool,
]:
    """One pass over the body: codegen shape key, parameters, template.

    The *shape key* captures everything structural about the body — the
    tagged opcode/register sequence — while immediates and access-pattern
    constants become positional ``params``.  Two kernels with equal keys
    evaluate through the same generated function.
    """
    width = 0
    alu = loads = stores = assoc = 0
    key: List[tuple] = []
    params: List[int] = []
    tmpl: List[Tuple[bool, int, bool]] = []
    seen_store = False
    stable = True
    for ins in kernel.body:
        t = type(ins)
        if t is AluInstr:
            d, a, b = ins.dst, ins.src_a, ins.src_b
            if d > width:
                width = d
            if a > width:
                width = a
            if b > width:
                width = b
            key.append((1, ins.op, d, a, b))
            alu += 1
            if seen_store:
                stable = False
        elif t is MoviInstr:
            d = ins.dst
            if d > width:
                width = d
            key.append((0, d))
            params.append(ins.imm & MASK64)
            alu += 1
            if seen_store:
                stable = False
        elif t is LoadInstr:
            d = ins.dst
            if d > width:
                width = d
            p = ins.pattern
            key.append((2, d))
            params.extend((p.base, p.stride, p.length, p.offset))
            tmpl.append((False, -1, False))
            loads += 1
            if seen_store:
                stable = False
        else:  # StoreInstr
            s = ins.src
            if s > width:
                width = s
            p = ins.pattern
            key.append((3, s))
            params.extend((p.base, p.stride, p.length, p.offset))
            tmpl.append((True, ins.site, ins.assoc))
            stores += 1
            if ins.assoc:
                assoc += 1
            seen_store = True
    return (
        width,
        (width, *key),
        tuple(params),
        tuple(tmpl),
        alu,
        loads,
        stores,
        assoc,
        stable,
    )


_MASK_LIT = "0xFFFFFFFFFFFFFFFF"
_MIX_LIT = "0x9E3779B97F4A7C15"

#: Opcode -> inlined expression template (matches repro.isa.opcodes).
_ALU_EXPR = {
    Opcode.ADD: "(r{a} + r{b}) & " + _MASK_LIT,
    Opcode.SUB: "(r{a} - r{b}) & " + _MASK_LIT,
    Opcode.MUL: "(r{a} * r{b}) & " + _MASK_LIT,
    Opcode.AND: "r{a} & r{b}",
    Opcode.OR: "r{a} | r{b}",
    Opcode.XOR: "r{a} ^ r{b}",
    Opcode.SHL: "(r{a} << (r{b} & 63)) & " + _MASK_LIT,
    Opcode.SHR: "r{a} >> (r{b} & 63)",
}

#: Shape key -> compiled evaluator.  Global: parameters are externalised,
#: so one function serves every same-shape kernel in every program.
_EVAL_CACHE: Dict[tuple, Callable[..., tuple]] = {}


def _generate_evaluator(key: tuple) -> Callable[..., tuple]:
    """``exec``-compile the specialised evaluator for one shape key.

    The function signature is ``f(trip, P, seed) -> (addrs, svalues,
    rows, external, load_set, overlay)`` with ``None`` for streams the
    shape cannot produce; rows are tuples (consumers only read/copy
    them).
    """
    width = key[0]
    body_keys = key[1:]
    has_load = any(k[0] == 2 for k in body_keys)
    has_store = any(k[0] == 3 for k in body_keys)
    forward = has_load and has_store
    nparams = sum(
        1 if k[0] == 0 else 4 if k[0] in (2, 3) else 0 for k in body_keys
    )

    lines: List[str] = ["def _eval(trip, P, seed):"]
    w = lines.append
    if nparams:
        w(f"    ({', '.join(f'p{i}' for i in range(nparams))},) = P")
    w("    A = []; Aa = A.append")
    if has_store:
        w("    S = []; Sa = S.append")
    w("    R = []; Ra = R.append")
    if has_load:
        w("    E = set(); Ea = E.add")
    if forward:
        w("    ov = {}; og = ov.get")
        w("    LA = set(); La = LA.add")
    w("    " + " = ".join(f"r{r}" for r in range(width + 1)) + " = 0")
    w("    for i in range(trip):")
    p = 0
    for part in body_keys:
        tag = part[0]
        if tag == 0:  # MOVI (immediate pre-masked in params)
            w(f"        r{part[1]} = p{p}")
            p += 1
        elif tag == 1:  # ALU
            _, op, dst, a, b = part
            w(f"        r{dst} = " + _ALU_EXPR[op].format(a=a, b=b))
        elif tag == 2:  # LOAD: params are (base, stride, length, offset)
            dst = part[1]
            w(f"        a = p{p} + ((p{p + 3} + i * p{p + 1}) % p{p + 2}) * 8")
            p += 4
            w("        Aa(a)")
            if forward:
                w("        La(a)")
                w("        v = og(a)")
                w("        if v is None:")
                w("            Ea(a)")
                w(f"            x = (a * {_MIX_LIT} + seed) & {_MASK_LIT}")
                w("            x ^= x >> 29")
                w(f"            v = (x * {_MIX_LIT}) & {_MASK_LIT}")
                w(f"        r{dst} = v")
            else:  # no stores in the body: every load reads the initialiser
                w("        Ea(a)")
                w(f"        x = (a * {_MIX_LIT} + seed) & {_MASK_LIT}")
                w("        x ^= x >> 29")
                w(f"        r{dst} = (x * {_MIX_LIT}) & {_MASK_LIT}")
        else:  # STORE
            src = part[1]
            w(f"        a = p{p} + ((p{p + 3} + i * p{p + 1}) % p{p + 2}) * 8")
            p += 4
            w("        Aa(a)")
            w(f"        Sa(r{src})")
            if forward:
                w(f"        ov[a] = r{src}")
    row = ", ".join(f"r{r}" for r in range(width + 1))
    if width == 0:
        row += ","
    w(f"        Ra(({row}))")
    w(
        "    return A, {}, R, {}, {}, {}".format(
            "S" if has_store else "None",
            "E" if has_load else "None",
            "LA" if forward else "None",
            "ov" if forward else "None",
        )
    )
    namespace: Dict[str, object] = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - trusted generated code
    return cast(Callable[..., tuple], namespace["_eval"])


def _run_codegen(
    plan: KernelPlan,
    key: tuple,
    params: tuple,
    trip: int,
    seed: int,
    line_bytes: int,
) -> None:
    """Evaluate the kernel through its shape's generated function."""
    fn = _EVAL_CACHE.get(key)
    if fn is None:
        fn = _generate_evaluator(key)
        _EVAL_CACHE[key] = fn
    addrs, svalues, rows, external, load_set, overlay = fn(
        trip, params, seed & MASK64
    )
    plan.addrs = addrs
    plan.lines = [a // line_bytes for a in addrs]
    plan.svalues = svalues if svalues is not None else []
    if external:
        plan.external_loads = frozenset(external)
    plan.overlap = bool(load_set) and not load_set.isdisjoint(overlay)
    plan._rows = rows


def _build_plan(
    kernel: Kernel,
    seed: int,
    line_bytes: int,
    program: Optional[Program] = None,
    kernel_index: int = 0,
) -> KernelPlan:
    """Evaluate one kernel into a :class:`KernelPlan`.

    Large trips go through the batched numpy evaluator (address/value
    columns); everything else — small trips and numpy-ineligible bodies —
    through the generated scalar evaluator.  ``program`` enables the
    numpy path's op-cache reuse and may be omitted in tests.
    """
    plan = KernelPlan(kernel)
    (
        width,
        key,
        params,
        tmpl,
        alu,
        loads,
        stores,
        assoc,
        stable,
    ) = _kernel_shape(kernel)
    plan.width = width
    plan.tmpl = tmpl
    plan.accesses_per_iter = loads + stores
    plan.stores_per_iter = stores
    plan.loads_per_iter = loads
    plan.alu_per_iter = alu
    plan.assoc_per_iter = assoc
    plan.has_assoc = assoc > 0
    plan.store_flags = tuple(t[0] for t in tmpl)
    plan.store_sites = tuple(t[1] for t in tmpl if t[0])
    # Register stability: a handler observing a store's register file via
    # the end-of-iteration rows needs no register definition after the
    # first store of the body.
    plan.regs_stable = stable

    trip = kernel.trip_count
    if np is not None and trip >= NUMPY_MIN_TRIP and program is not None:
        _, ops = ops_for_kernel(program, kernel_index)
        if _try_build_numpy(plan, ops, trip, seed, line_bytes):
            return plan
    _run_codegen(plan, key, params, trip, seed, line_bytes)
    return plan


def _address_column(op: tuple, trip: int) -> np.ndarray:
    """The access-pattern address stream of one load/store op."""
    base, stride, length, offset = op[2], op[3], op[4], op[5]
    idx = (offset + stride * np.arange(trip, dtype=np.int64)) % length
    return base + idx * 8


def _try_build_numpy(
    plan: KernelPlan, ops: Sequence[tuple], trip: int, seed: int, line_bytes: int
) -> bool:
    """Batched evaluation for large straight-line bodies.

    Returns False (leaving the plan untouched) when the body needs the
    scalar evaluator: in-kernel load/store aliasing (store-to-load
    forwarding), or loop-carried register reads other than the canonical
    self-accumulation (``acc += value`` into an otherwise-undefined
    register, which vectorizes as a prefix sum).
    """
    # Pass 1: addresses, and the alias pre-check.
    addr_cols: List[np.ndarray] = []
    load_addr_arrays: List[np.ndarray] = []
    store_addr_arrays: List[np.ndarray] = []
    for op in ops:
        tag = op[0]
        if tag == 2 or tag == 3:
            col = _address_column(op, trip)
            addr_cols.append(col)
            (load_addr_arrays if tag == 2 else store_addr_arrays).append(col)
    if store_addr_arrays and load_addr_arrays:
        store_u = np.unique(np.concatenate(store_addr_arrays))
        load_u = np.unique(np.concatenate(load_addr_arrays))
        if np.intersect1d(store_u, load_u, assume_unique=True).size:
            return False

    defined_anywhere = set()
    for op in ops:
        tag = op[0]
        if tag == 0 or tag == 2:
            defined_anywhere.add(op[1])
        elif tag == 1:
            defined_anywhere.add(op[2])

    # Pass 2: register columns.
    cols: Dict[int, object] = {}
    defined: set = set()
    svalue_cols: List[np.ndarray] = []
    acc_idx = 0

    def col_of(reg: int) -> Optional[object]:
        if reg in defined:
            return cols[reg]
        if reg in defined_anywhere:
            return None  # loop-carried: previous-iteration value
        return _U64(0)  # never defined: architectural zero

    for op in ops:
        tag = op[0]
        if tag == 0:  # MOVI
            cols[op[1]] = _U64(op[2])
            defined.add(op[1])
        elif tag == 2:  # LOAD (alias-free: values are the initialiser's)
            cols[op[1]] = _initial_values(
                addr_cols[acc_idx].astype(np.uint64), seed
            )
            defined.add(op[1])
            acc_idx += 1
        elif tag == 3:  # STORE
            src = col_of(op[1])
            if src is None:
                return False
            if not isinstance(src, np.ndarray):
                src = np.full(trip, src, dtype=np.uint64)
            svalue_cols.append(src)
            acc_idx += 1
        else:  # ALU
            fn, dst, a, b = op[1], op[2], op[3], op[4]
            opcode = _FUNC_TO_OPCODE.get(fn)
            if opcode is None:
                return False
            ca = col_of(a)
            cb = col_of(b)
            if ca is None:
                # The canonical accumulator: dst += src_b with dst
                # loop-carried and starting at zero -> prefix sum.
                if opcode is Opcode.ADD and a == dst and cb is not None:
                    operand = (
                        cb
                        if isinstance(cb, np.ndarray)
                        else np.full(trip, cb, dtype=np.uint64)
                    )
                    cols[dst] = np.cumsum(operand, dtype=np.uint64)
                    defined.add(dst)
                    continue
                return False
            if cb is None:
                return False
            if not isinstance(ca, np.ndarray) and not isinstance(cb, np.ndarray):
                cols[dst] = _np_alu(
                    opcode, np.asarray(ca, dtype=np.uint64), np.asarray(cb, np.uint64)
                )[()]
            else:
                cols[dst] = _np_alu(opcode, ca, cb)
            defined.add(dst)

    api = plan.accesses_per_iter
    flat = np.empty((trip, api), dtype=np.int64)
    for j, col in enumerate(addr_cols):
        flat[:, j] = col
    addrs = flat.ravel()
    plan.addrs = addrs.tolist()
    plan.lines = (addrs // line_bytes).tolist()
    if svalue_cols:
        sflat = np.empty((trip, len(svalue_cols)), dtype=np.uint64)
        for j, col in enumerate(svalue_cols):
            sflat[:, j] = col
        plan.svalues = sflat.ravel().tolist()
    if load_addr_arrays:
        plan.external_loads = frozenset(
            np.unique(np.concatenate(load_addr_arrays)).tolist()
        )
    plan._cols = cols
    return True


def _build_scalar(
    plan: KernelPlan,
    ops: Sequence[tuple],
    width: int,
    trip: int,
    seed: int,
    line_bytes: int,
) -> None:
    """Reference evaluation: one scalar pass, no observers, no events.

    Handles every body shape — in-kernel store-to-load forwarding through
    an overlay, loop-carried registers (the file persists across
    iterations, as in the interpreter), partially-defined registers.

    Not on the production path (the generated evaluators are); kept as
    the oracle the codegen unit tests pin shapes against.
    """
    regs = [0] * (width + 1)
    rows: List[List[int]] = []
    addrs: List[int] = []
    svalues: List[int] = []
    overlay: Dict[int, int] = {}
    external: set = set()
    load_addrs: set = set()
    seed64 = seed & MASK64
    for i in range(trip):
        for op in ops:
            tag = op[0]
            if tag == 1:
                regs[op[2]] = op[1](regs[op[3]], regs[op[4]])
            elif tag == 2:
                addr = op[2] + ((op[5] + i * op[3]) % op[4]) * 8
                addrs.append(addr)
                load_addrs.add(addr)
                value = overlay.get(addr)
                if value is None:
                    external.add(addr)
                    x = (addr * _INIT_MIX + seed64) & MASK64
                    x ^= x >> 29
                    value = (x * _INIT_MIX) & MASK64
                regs[op[1]] = value
            elif tag == 3:
                addr = op[2] + ((op[5] + i * op[3]) % op[4]) * 8
                addrs.append(addr)
                value = regs[op[1]]
                svalues.append(value)
                overlay[addr] = value
            else:
                regs[op[1]] = op[2]
        rows.append(regs.copy())
    plan.addrs = addrs
    plan.lines = [a // line_bytes for a in addrs]
    plan.svalues = svalues
    plan.external_loads = frozenset(external)
    plan.overlap = not load_addrs.isdisjoint(overlay)
    plan._rows = rows


class ProgramPlans:
    """Lazy per-kernel plans of one program (one memory seed)."""

    def __init__(self, program: Program, seed: int, line_bytes: int) -> None:
        self.program = program
        self.seed = seed
        self.line_bytes = line_bytes
        self._plans: Dict[int, KernelPlan] = {}

    def plan(self, kernel_index: int) -> KernelPlan:
        """The plan for one kernel (built on first use, then cached)."""
        plan = self._plans.get(kernel_index)
        if plan is None:
            with _phase("plan-build"):
                plan = _build_plan(
                    self.program.kernels[kernel_index],
                    self.seed,
                    self.line_bytes,
                    program=self.program,
                    kernel_index=kernel_index,
                )
            self._plans[kernel_index] = plan
        return plan


#: Program -> {(seed, line_bytes) -> ProgramPlans}.  Weak keys: plans die
#: with the program; strong values are fine (plans only reference their
#: own program's kernels).
_PLAN_CACHE: "WeakKeyDictionary[Program, Dict[Tuple[int, int], ProgramPlans]]" = (
    WeakKeyDictionary()
)


def plans_for(program: Program, seed: int, line_bytes: int) -> ProgramPlans:
    """The (shared, cached) plans of ``program`` for one memory seed."""
    per_program = _PLAN_CACHE.get(program)
    if per_program is None:
        per_program = {}
        _PLAN_CACHE[program] = per_program
    key = (seed, line_bytes)
    plans = per_program.get(key)
    if plans is None:
        plans = ProgramPlans(program, seed, line_bytes)
        per_program[key] = plans
    return plans
