"""Run statistics and derived metrics.

A :class:`RunResult` captures everything the experiment harness needs:
wall/useful time, the energy ledger, per-interval checkpoint statistics,
per-recovery cost breakdowns, and the compile-pass summary.  The derived
metrics (:func:`time_overhead`, :func:`energy_overhead`,
:meth:`RunResult.overhead_edp`) are the quantities the paper's figures
plot.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional

from repro.compiler.embed import CompileStats
from repro.energy.accounting import EnergyLedger
from repro.obs.metrics import ObsReport
from repro.util.tables import format_table

__all__ = [
    "BaselineProfile",
    "IntervalStats",
    "RecoveryStats",
    "RunResult",
    "time_overhead",
    "energy_overhead",
]


def _dataclass_to_dict(obj: Any) -> Dict[str, Any]:
    """Flat field mapping of a (non-nested) stats dataclass."""
    return {f.name: getattr(obj, f.name) for f in fields(obj)}


def _dataclass_from_dict(cls: type, data: Dict[str, Any]) -> Any:
    """Strict inverse of :func:`_dataclass_to_dict`.

    Unknown keys, missing keys and non-mapping input all raise — the
    result cache relies on this to classify corrupt entries as misses.
    """
    if not isinstance(data, dict):
        raise ValueError(f"{cls.__name__}: expected a mapping, got {type(data)}")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"{cls.__name__}: unknown fields {sorted(unknown)}")
    return cls(**data)


@dataclass(frozen=True)
class BaselineProfile:
    """Per-core useful execution profile of an error-free, checkpoint-free
    run; checkpoint boundaries and error times are placed against it."""

    per_core_useful_ns: List[float]

    @property
    def useful_ns(self) -> float:
        """Critical-path useful time (slowest core)."""
        return max(self.per_core_useful_ns)


@dataclass(frozen=True, slots=True)
class IntervalStats:
    """One checkpoint interval's statistics."""

    index: int
    useful_ns: float
    logged_records: int
    omitted_records: int
    logged_bytes: int
    omitted_bytes: int
    flushed_bytes: int
    boundary_ns: float
    clusters: int
    #: Total bytes of memory ever written by this point of the run — the
    #: size a traditional full-snapshot checkpoint would have to copy.
    footprint_bytes: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe field mapping."""
        return _dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "IntervalStats":
        """Rebuild from :meth:`to_dict` output (strict: unknown or
        missing fields raise, so corrupt cache entries are detected)."""
        return _dataclass_from_dict(cls, data)

    @property
    def baseline_bytes(self) -> int:
        """What the baseline would have logged for this interval."""
        return self.logged_bytes + self.omitted_bytes

    @property
    def reduction(self) -> float:
        """Fractional checkpoint-data reduction ACR achieved here."""
        if self.baseline_bytes == 0:
            return 0.0
        return self.omitted_bytes / self.baseline_bytes


@dataclass(frozen=True, slots=True)
class RecoveryStats:
    """One recovery's statistics."""

    error_index: int
    occurred_useful_ns: float
    detected_useful_ns: float
    safe_checkpoint: int
    skipped_corrupted: bool
    participants: int
    waste_ns: float
    rollback_ns: float
    recompute_ns: float
    restored_records: int
    recomputed_values: int
    recompute_instructions: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe field mapping."""
        return _dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RecoveryStats":
        """Rebuild from :meth:`to_dict` output (strict)."""
        return _dataclass_from_dict(cls, data)

    @property
    def total_ns(self) -> float:
        """Full cost of this recovery (Eq. 2 / Eq. 3 per-event term)."""
        return self.waste_ns + self.rollback_ns + self.recompute_ns


@dataclass
class RunResult:
    """Everything one simulation run produced."""

    label: str
    scheme: str
    acr: bool
    num_cores: int
    wall_ns: float
    per_core_useful_ns: List[float]
    per_core_overhead_ns: List[float]
    energy: EnergyLedger
    intervals: List[IntervalStats]
    recoveries: List[RecoveryStats]
    instructions: int
    alu_ops: int
    loads: int
    stores: int
    assoc_ops: int
    l1d_accesses: int
    l2_accesses: int
    memory_accesses: int
    writebacks: int
    compile_stats: Optional[CompileStats]
    addrmap_records: int
    addrmap_rejections: int
    omissions: int
    omission_lookups: int
    #: The run's checkpoint store (logs pruned to the retention horizon).
    #: Kept for post-run verification: tests recompute every retained
    #: omitted value and compare against ground truth.
    checkpoint_store: object = None
    #: Observability payload — present only when the run collected
    #: metrics (``collect_metrics=True`` or an enabled tracer attached).
    #: Default/untraced runs carry ``None`` and serialise it as such.
    obs: Optional[ObsReport] = None
    #: Vector-engine coverage counters (``replayed_iterations``,
    #: ``fallback_iterations``, ``fallback.<rule>`` per denial reason).
    #: Populated only on runs the vector engine executed inline;
    #: excluded from serialisation like ``checkpoint_store``, so the
    #: engine-equivalence contract stays byte-identical.
    vector_coverage: Optional[Dict[str, int]] = None

    # -- core quantities -----------------------------------------------------
    @property
    def useful_ns(self) -> float:
        """Critical-path useful time."""
        return max(self.per_core_useful_ns)

    @property
    def overhead_ns(self) -> float:
        """Critical-path overhead time (wall − useful)."""
        return self.wall_ns - self.useful_ns

    @property
    def energy_pj(self) -> float:
        """Total run energy."""
        return self.energy.total_pj()

    def baseline_profile(self) -> BaselineProfile:
        """Profile for boundary/error placement of dependent runs."""
        return BaselineProfile(list(self.per_core_useful_ns))

    # -- checkpoint statistics -------------------------------------------------
    @property
    def checkpoint_count(self) -> int:
        """Checkpoints established."""
        return len(self.intervals)

    @property
    def total_checkpoint_bytes(self) -> int:
        """Total logged checkpoint data (ACR omissions excluded)."""
        return sum(iv.logged_bytes for iv in self.intervals)

    @property
    def total_baseline_checkpoint_bytes(self) -> int:
        """Checkpoint data a non-ACR baseline would have logged."""
        return sum(iv.baseline_bytes for iv in self.intervals)

    @property
    def max_checkpoint_bytes(self) -> int:
        """Largest single checkpoint (paper Fig. 9 'Max' metric)."""
        return max((iv.logged_bytes for iv in self.intervals), default=0)

    @property
    def checkpoint_time_ns(self) -> float:
        """Boundary time plus in-interval log-write stalls (critical path).

        This is the o_chk component attributable to checkpointing; it is
        folded into per-core overhead already — exposed here for reports.
        """
        return sum(iv.boundary_ns for iv in self.intervals)

    # -- recovery statistics ----------------------------------------------------
    @property
    def recovery_count(self) -> int:
        """Recoveries performed."""
        return len(self.recoveries)

    @property
    def recovery_time_ns(self) -> float:
        """Total recovery time (waste + rollback + recomputation)."""
        return sum(r.total_ns for r in self.recoveries)

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe mapping of everything the experiment harness consumes.

        ``checkpoint_store`` — an in-memory object graph kept only for
        post-run verification — is deliberately excluded, as is
        ``vector_coverage`` (engine-private diagnostics that must not
        perturb the cross-engine bit-identity contract); results rebuilt
        by :meth:`from_dict` carry ``None`` for both.
        """
        return {
            "label": self.label,
            "scheme": self.scheme,
            "acr": self.acr,
            "num_cores": self.num_cores,
            "wall_ns": self.wall_ns,
            "per_core_useful_ns": list(self.per_core_useful_ns),
            "per_core_overhead_ns": list(self.per_core_overhead_ns),
            "energy": self.energy.to_dict(),
            "intervals": [iv.to_dict() for iv in self.intervals],
            "recoveries": [r.to_dict() for r in self.recoveries],
            "instructions": self.instructions,
            "alu_ops": self.alu_ops,
            "loads": self.loads,
            "stores": self.stores,
            "assoc_ops": self.assoc_ops,
            "l1d_accesses": self.l1d_accesses,
            "l2_accesses": self.l2_accesses,
            "memory_accesses": self.memory_accesses,
            "writebacks": self.writebacks,
            "compile_stats": (
                _dataclass_to_dict(self.compile_stats)
                if self.compile_stats is not None
                else None
            ),
            "addrmap_records": self.addrmap_records,
            "addrmap_rejections": self.addrmap_rejections,
            "omissions": self.omissions,
            "omission_lookups": self.omission_lookups,
            "obs": self.obs.to_dict() if self.obs is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output.

        Strict: corrupt or schema-drifted mappings raise ``ValueError``/
        ``TypeError``/``KeyError`` rather than producing a half-built
        result, so cache readers can treat any exception as a miss.
        """
        if not isinstance(data, dict):
            raise ValueError(f"RunResult: expected a mapping, got {type(data)}")
        data = dict(data)
        try:
            energy = EnergyLedger.from_dict(data.pop("energy"))
            intervals = [IntervalStats.from_dict(d) for d in data.pop("intervals")]
            recoveries = [
                RecoveryStats.from_dict(d) for d in data.pop("recoveries")
            ]
            compile_raw = data.pop("compile_stats")
            obs_raw = data.pop("obs")
        except AttributeError as exc:  # e.g. a list where a dict belongs
            raise ValueError(f"RunResult: malformed nested payload: {exc}")
        compile_stats = (
            _dataclass_from_dict(CompileStats, compile_raw)
            if compile_raw is not None
            else None
        )
        obs = ObsReport.from_dict(obs_raw) if obs_raw is not None else None
        result = _dataclass_from_dict(
            cls,
            dict(
                data,
                energy=energy,
                intervals=intervals,
                recoveries=recoveries,
                compile_stats=compile_stats,
                obs=obs,
            ),
        )
        return result

    def equivalent(self, other: "RunResult") -> bool:
        """Statistical equality: every serialised field matches.

        This is the determinism contract between the serial and parallel
        engines — it ignores only ``checkpoint_store`` and
        ``vector_coverage`` (never shipped across processes or to disk).
        """
        return self.to_dict() == other.to_dict()

    def describe(self) -> str:
        """Human summary of the run, rendered as an aligned table.

        Always includes the headline quantities; the ``trace events``
        row appears only when the run carried an observability payload.
        """
        scheme = self.scheme + ("+ACR" if self.acr else "")
        rows: List[List[object]] = [
            ["scheme", scheme],
            ["cores", self.num_cores],
            ["wall (us)", self.wall_ns / 1e3],
            ["useful (us)", self.useful_ns / 1e3],
            ["overhead (us)", self.overhead_ns / 1e3],
            ["checkpoints", self.checkpoint_count],
            ["ckpt data (KiB)", self.total_checkpoint_bytes / 1024],
            ["recoveries", self.recovery_count],
            ["energy (uJ)", self.energy_pj / 1e6],
            ["instructions", self.instructions],
        ]
        if self.obs is not None:
            rows.append(
                [
                    "trace events",
                    f"{self.obs.events_captured} captured / "
                    f"{self.obs.events_dropped} dropped",
                ]
            )
        return format_table(
            ["metric", "value"], rows, title=f"run {self.label}"
        )


def time_overhead(run: RunResult, baseline: RunResult) -> float:
    """Fractional execution-time overhead of ``run`` w.r.t. ``baseline``.

    The paper's Figs. 6/11/12 plot exactly this quantity (w.r.t. NoCkpt).
    """
    if baseline.wall_ns <= 0:
        raise ValueError("baseline wall time must be positive")
    return run.wall_ns / baseline.wall_ns - 1.0


def energy_overhead(run: RunResult, baseline: RunResult) -> float:
    """Fractional energy overhead of ``run`` w.r.t. ``baseline`` (Fig. 7)."""
    base = baseline.energy_pj
    if base <= 0:
        raise ValueError("baseline energy must be positive")
    return run.energy_pj / base - 1.0
