"""Per-key lockfile contracts: exclusion, staleness, bounded waits."""

import os

from repro.resilience.locks import KeyLock


def test_exclusive_acquire_and_release(tmp_path):
    path = tmp_path / "k.lock"
    a = KeyLock(path, wait_s=0.0)
    b = KeyLock(path, wait_s=0.0)
    assert a.try_acquire()
    assert path.exists()
    assert not b.try_acquire()
    a.release()
    assert not path.exists()
    assert b.try_acquire()
    b.release()


def test_lockfile_records_owner_pid(tmp_path):
    path = tmp_path / "k.lock"
    lock = KeyLock(path)
    assert lock.try_acquire()
    assert path.read_text().strip() == str(os.getpid())
    lock.release()


def test_bounded_wait_expires_without_ownership(tmp_path):
    path = tmp_path / "k.lock"
    holder = KeyLock(path)
    assert holder.try_acquire()
    waiter = KeyLock(path, wait_s=0.1, poll_s=0.02)
    assert waiter.acquire() is False
    assert not waiter.owned
    holder.release()


def test_stale_lock_is_broken_by_mtime(tmp_path):
    path = tmp_path / "k.lock"
    path.write_text("99999\n")  # orphan left by a crashed owner
    old = path.stat().st_mtime - 3600
    os.utime(path, (old, old))
    lock = KeyLock(path, stale_s=600.0)
    assert lock.try_acquire()
    assert lock.owned
    lock.release()


def test_fresh_lock_is_not_broken(tmp_path):
    path = tmp_path / "k.lock"
    path.write_text("99999\n")
    assert not KeyLock(path, stale_s=600.0).try_acquire()


def test_release_survives_external_break(tmp_path):
    path = tmp_path / "k.lock"
    lock = KeyLock(path)
    assert lock.try_acquire()
    path.unlink()  # someone broke us as stale
    lock.release()  # must not raise
    assert not lock.owned


def test_context_manager(tmp_path):
    path = tmp_path / "k.lock"
    with KeyLock(path) as acquired:
        assert acquired
        assert path.exists()
    assert not path.exists()
