"""Regenerate the committed ``BENCH_*.json`` engine-trajectory snapshots.

Usage::

    PYTHONPATH=src python benchmarks/snapshot_engines.py [--quick]

Writes ``BENCH_fig06_time_overhead.json`` and ``BENCH_micro.json`` at the
repository root: one entry per engine, schema v1 (see
:func:`_bench_lib.bench_snapshot`).  The protocol is tuned for honest
engine-to-engine comparison rather than cold-start realism:

* one shared :class:`Simulator` per workload — compile caches and trace
  plans are warm for both engines, so the timed region is the simulation
  hot loop the engines actually differ in;
* interleaved best-of-N sampling (A/B/A/B), the classic low-noise
  estimator, so allocator growth and frequency scaling spread across
  both series instead of biasing one;
* every run's ``RunResult.to_dict()`` feeds a per-engine checksum, and
  the generator *refuses to write* snapshots whose engines disagree —
  a committed snapshot is therefore also a bit-identity certificate.

``--quick`` shrinks scale/reps for a fast smoke of the generator itself;
committed snapshots must come from a default run.
"""

from __future__ import annotations

import gc
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_lib import bench_snapshot, results_checksum, write_snapshot

from repro.arch.config import MachineConfig
from repro.experiments.configs import ConfigRequest, make_options
from repro.isa.builder import chain_kernel
from repro.isa.instructions import AddressPattern
from repro.isa.interpreter import Interpreter, MemoryImage
from repro.isa.program import Program
from repro.sim.simulator import Simulator
from repro.sim.vector.interp import make_interpreter
from repro.workloads.nas import NAS_BENCHMARKS
from repro.workloads.registry import get_workload

#: Figure-6 snapshot protocol (full scale, bounded reps: engine walls in
#: minutes, not hours; ``reps`` is recorded in the snapshot).
CORES = 8
SCALE = 1.0
REPS = 60
PAIRS = 2
CONFIGS = ("NoCkpt", "Ckpt_NE", "ReCkpt_NE", "Ckpt_E", "ReCkpt_E")


def _timed(fn):
    gc.collect()
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def snapshot_fig06(quick: bool = False):
    cores = 2 if quick else CORES
    scale = 0.1 if quick else SCALE
    reps = 4 if quick else REPS
    walls = {"interp": {}, "vector": {}}
    digests = {"interp": {}, "vector": {}}
    coverage: dict = {}

    for wl in sorted(NAS_BENCHMARKS):
        spec = get_workload(wl)
        programs = spec.build_programs(cores, region_scale=scale, reps=reps)
        sim = Simulator(programs, MachineConfig(num_cores=cores))
        requests = [
            ConfigRequest(name, threshold=spec.default_threshold)
            for name in CONFIGS
        ]

        def run_all(engine, collect_coverage=False):
            results = {}
            baseline = None
            for request in requests:
                res = sim.run(make_options(request, baseline, engine=engine))
                if request.is_baseline:
                    baseline = res.baseline_profile()
                results[request.config] = res.to_dict()
                # Coverage is diagnostic (outside to_dict, so outside the
                # digest); observed baseline runs report none.  Collected
                # on the warm pass only — the timed repeats would just
                # multiply identical counts.
                if collect_coverage and res.vector_coverage is not None:
                    for key, count in res.vector_coverage.items():
                        coverage[key] = coverage.get(key, 0) + count
            return results

        # Warm plans + compile caches for both series.
        run_all("vector", collect_coverage=True)
        mins = {"interp": float("inf"), "vector": float("inf")}
        for _ in range(PAIRS):
            for engine in ("interp", "vector"):
                payload = {}

                def timed_run(engine=engine, payload=payload):
                    payload.update(run_all(engine))

                mins[engine] = min(mins[engine], _timed(timed_run))
                digests[engine][wl] = results_checksum(payload)
        for engine in ("interp", "vector"):
            walls[engine][wl] = round(mins[engine], 3)
        if digests["interp"][wl] != digests["vector"][wl]:
            raise SystemExit(
                f"ENGINE DIVERGENCE on {wl}: refusing to write snapshot"
            )
        speedup = mins["interp"] / mins["vector"]
        print(
            f"fig06 {wl}: interp {mins['interp']:.2f}s  "
            f"vector {mins['vector']:.2f}s  ({speedup:.2f}x)",
            flush=True,
        )

    entries = []
    total = {e: sum(walls[e].values()) for e in walls}
    for engine in ("interp", "vector"):
        extra = {"configs": list(CONFIGS), "per_workload_s": walls[engine]}
        if engine == "vector":
            extra["speedup_vs_interp"] = round(total["interp"] / total["vector"], 2)
        entries.append(
            bench_snapshot(
                "fig06_time_overhead",
                engine,
                total[engine],
                results_checksum(digests[engine]),
                extra=extra,
                scale=scale,
                cores=cores,
                reps=reps,
                vector_coverage=coverage if engine == "vector" else None,
            )
        )
    return entries


def snapshot_micro(quick: bool = False):
    trip = 64 if quick else 256
    program = Program(
        [
            chain_kernel(
                "k",
                AddressPattern(0, 1, trip),
                [AddressPattern(1 << 20, 1, trip)],
                8,
                trip,
            )
            for _ in range(8)
        ]
    )

    coverage: dict = {}

    def run(engine):
        it = make_interpreter(engine, program, MemoryImage(0))
        it.run_to_completion()
        if engine == "vector" and not coverage:
            coverage["replayed_iterations"] = it.replayed_iterations
            coverage["fallback_iterations"] = it.fallback_iterations
            for reason, count in sorted(it.fallback_reasons.items()):
                coverage[f"fallback.{reason}"] = count
        return it.memory.snapshot()

    finals = {e: run(e) for e in ("interp", "vector")}  # warm + checksum
    if finals["interp"] != finals["vector"]:
        raise SystemExit("ENGINE DIVERGENCE in micro: refusing to write snapshot")
    digest = results_checksum(
        sorted((a, v) for a, v in finals["interp"].items())
    )

    mins = {"interp": float("inf"), "vector": float("inf")}
    for _ in range(3):
        for engine in ("interp", "vector"):
            mins[engine] = min(mins[engine], _timed(lambda e=engine: run(e)))
    print(
        f"micro: interp {mins['interp'] * 1e3:.1f}ms  "
        f"vector {mins['vector'] * 1e3:.1f}ms  "
        f"({mins['interp'] / mins['vector']:.2f}x)",
        flush=True,
    )
    entries = []
    for engine in ("interp", "vector"):
        extra = {"kernel": f"chain8x{trip}"}
        if engine == "vector":
            extra["speedup_vs_interp"] = round(
                mins["interp"] / mins["vector"], 2
            )
        entries.append(
            bench_snapshot(
                "micro", engine, mins[engine], digest,
                extra=extra, scale=1.0, cores=1, reps=trip,
                vector_coverage=coverage if engine == "vector" else None,
            )
        )
    return entries


def main(argv):
    quick = "--quick" in argv
    only = None
    if "--only" in argv:
        only = argv[argv.index("--only") + 1]
    if only in (None, "micro"):
        print(f"wrote {write_snapshot('micro', snapshot_micro(quick))}")
    if only in (None, "fig06"):
        print(
            "wrote "
            f"{write_snapshot('fig06_time_overhead', snapshot_fig06(quick))}"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
