"""The campaign service client: a thin, strict wire-protocol speaker.

:class:`CampaignClient` holds one connection to a
:class:`~repro.service.daemon.CampaignDaemon`, frames every request with
:func:`~repro.service.protocol.encode_frame`, and reassembles replies
through :func:`~repro.service.protocol.decode_stream` — so a read that
lands mid-message just buffers the torn tail until the rest arrives.
Errors the daemon reports become :class:`ServiceError`; wire-shape drift
surfaces as :class:`~repro.service.protocol.ProtocolError`.  The client
is deliberately dumb: campaign semantics (dedupe, replication, phases)
all live daemon-side, so any process that can speak line-JSON over a
Unix socket is a full peer.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.service.campaigns import CampaignSpec
from repro.service.protocol import decode_stream, encode_frame

__all__ = ["ServiceError", "CampaignClient", "wait_for_socket"]


class ServiceError(RuntimeError):
    """The daemon reported an error, or the connection died mid-op."""


def wait_for_socket(
    path: Union[str, Path], timeout_s: float = 10.0, poll_s: float = 0.05
) -> bool:
    """Block until a daemon accepts connections on ``path`` (True) or the
    deadline passes (False).  The socket *file* appearing is not enough —
    this probes with a real connect, so a returned True means a live
    listener."""
    path = str(path)
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.connect(path)
            return True
        except OSError:
            time.sleep(poll_s)
        finally:
            probe.close()
    return False


class CampaignClient:
    """One connection to the campaign daemon (context manager)."""

    def __init__(
        self, socket_path: Union[str, Path], timeout_s: float = 600.0
    ) -> None:
        self.socket_path = str(socket_path)
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._buf = b""
        self._pending: List[Dict[str, Any]] = []
        #: Complete-but-undecodable wire lines dropped so far.
        self.malformed = 0

    # ------------------------------------------------------------ lifecycle --
    def connect(self) -> "CampaignClient":
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            try:
                sock.connect(self.socket_path)
            except OSError as exc:
                sock.close()
                raise ServiceError(
                    f"cannot reach campaign daemon at "
                    f"{self.socket_path}: {exc}"
                ) from None
            self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "CampaignClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ----------------------------------------------------------------- wire --
    def _send(self, doc: Dict[str, Any]) -> None:
        self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(encode_frame(doc))
        except OSError as exc:
            raise ServiceError(f"send failed: {exc}") from None

    def _recv(self) -> Dict[str, Any]:
        """The next complete message (buffering torn tails across
        reads); raises :class:`ServiceError` on EOF or timeout."""
        assert self._sock is not None
        while not self._pending:
            try:
                data = self._sock.recv(65536)
            except socket.timeout:
                raise ServiceError(
                    f"no reply from daemon within {self.timeout_s}s"
                ) from None
            except OSError as exc:
                raise ServiceError(f"recv failed: {exc}") from None
            if not data:
                raise ServiceError("daemon closed the connection")
            self._buf += data
            messages, self._buf, malformed = decode_stream(self._buf)
            self.malformed += malformed
            self._pending.extend(messages)
        return self._pending.pop(0)

    # ------------------------------------------------------------------ ops --
    def submit(
        self,
        spec: CampaignSpec,
        stream: bool = False,
        on_frame: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Run one campaign on the daemon; returns its report document.

        With ``stream=True`` the daemon forwards every telemetry frame
        and ``on_frame`` sees each frame dict as it arrives (frames are
        advisory: a raising callback aborts the client, never the
        campaign, which completes and stores daemon-side regardless).
        """
        self._send(
            {
                "op": "submit",
                "campaign": spec.to_dict(),
                "stream": bool(stream),
            }
        )
        while True:
            msg = self._recv()
            op = msg["op"]
            if op == "accepted":
                continue
            if op == "frame":
                if on_frame is not None:
                    on_frame(msg["frame"])
                continue
            if op == "result":
                return msg["report"]
            if op == "error":
                raise ServiceError(msg.get("message", "unknown error"))
            raise ServiceError(f"unexpected reply {op!r} to submit")

    def ping(self) -> Dict[str, Any]:
        """The daemon's status document (shards, campaigns, dedupe)."""
        self._send({"op": "ping"})
        msg = self._recv()
        if msg["op"] != "status":
            raise ServiceError(f"unexpected reply {msg['op']!r} to ping")
        return msg

    def shutdown(self) -> None:
        """Ask the daemon to stop serving (acknowledged with ``bye``)."""
        self._send({"op": "shutdown"})
        try:
            msg = self._recv()
        except ServiceError:
            return  # daemon may exit before the bye flushes
        if msg["op"] not in ("bye", "error"):
            raise ServiceError(
                f"unexpected reply {msg['op']!r} to shutdown"
            )

    def watch(
        self,
        on_frame: Callable[[Dict[str, Any]], None],
        stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Subscribe to every frame the daemon emits, for any campaign,
        until ``stop()`` goes true, the daemon says ``bye``, or the
        connection ends (a remote monitor's receive loop)."""
        self._send({"op": "watch"})
        while stop is None or not stop():
            try:
                msg = self._recv()
            except ServiceError:
                return
            if msg["op"] == "frame":
                on_frame(msg["frame"])
            elif msg["op"] == "bye":
                return
