"""Typed telemetry frames streamed out of running tasks.

Where :mod:`repro.obs.events` records what the *simulated machine* did
(post-hoc, riding on ``RunResult.obs``), a telemetry frame reports what
the *harness* is doing right now: a worker picked a task up, crossed an
interval boundary, changed execution phase, or finished.  Frames cross
the supervisor's worker pipes as plain dicts while the task is still
running, so the campaign aggregator sees progress during a run, not
after it.

Frames are **advisory**: they never feed results, the simulator emits
them only when a sink is installed (zero frames — and the byte-identical
hot path — when disabled), and a malformed frame is dropped by the
receiver, never raised.

``FRAME_TYPES`` maps wire names back to classes; the JSONL linter and
the round-trip tests are driven from it (wire dicts use the ``"frame"``
key, so the shared linter can tell frames from trace events, which use
``"name"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, Tuple, Type

__all__ = [
    "TelemetryFrame",
    "TaskStarted",
    "TaskHeartbeat",
    "PhaseChanged",
    "MetricsDelta",
    "TaskFinished",
    "FRAME_TYPES",
    "frame_from_dict",
]


@dataclass(frozen=True)
class TelemetryFrame:
    """Base frame: emission wall-clock time plus the emitting task."""

    #: Wall-clock epoch seconds at emission (harness time, not simulated
    #: time — frames are about the campaign, not the machine).
    ts_s: float
    #: Label of the task that emitted the frame, e.g. ``bt/ReCkpt_E``.
    task: str

    #: Wire name of the frame (stable across refactors; the dict key is
    #: ``"frame"`` so the JSONL linter can dispatch frames vs events).
    frame: ClassVar[str] = "frame"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe mapping: ``frame`` plus every dataclass field."""
        doc: Dict[str, Any] = {"frame": self.frame}
        for f in fields(self):
            doc[f.name] = getattr(self, f.name)
        return doc


@dataclass(frozen=True)
class TaskStarted(TelemetryFrame):
    """A task began executing (``pid`` of the executing process)."""

    pid: int

    frame: ClassVar[str] = "task_started"


@dataclass(frozen=True)
class TaskHeartbeat(TelemetryFrame):
    """The task crossed interval boundary ``interval`` and is alive.

    ``instructions`` is the run's cumulative instruction count at the
    boundary — the aggregator differentiates consecutive heartbeats into
    a sim-iterations/s gauge.
    """

    interval: int
    instructions: int

    frame: ClassVar[str] = "task_heartbeat"


@dataclass(frozen=True)
class PhaseChanged(TelemetryFrame):
    """The task entered execution phase ``phase`` (see
    :data:`repro.obs.telemetry.profile.PHASES`)."""

    phase: str

    frame: ClassVar[str] = "phase_changed"


@dataclass(frozen=True)
class MetricsDelta(TelemetryFrame):
    """Incremental per-interval counters (closing-interval totals)."""

    interval: int
    counters: Dict[str, int] = field(default_factory=dict)

    frame: ClassVar[str] = "metrics_delta"


@dataclass(frozen=True)
class TaskFinished(TelemetryFrame):
    """The task's execution ended (``ok`` False on an exception).

    ``phase_seconds``/``phase_counts`` carry the task's
    :class:`~repro.obs.telemetry.profile.PhaseProfiler` totals so the
    parent can attribute campaign wall-clock without a second channel.
    """

    ok: bool
    seconds: float
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    phase_counts: Dict[str, int] = field(default_factory=dict)

    frame: ClassVar[str] = "task_finished"


_FRAME_CLASSES: Tuple[Type[TelemetryFrame], ...] = (
    TaskStarted,
    TaskHeartbeat,
    PhaseChanged,
    MetricsDelta,
    TaskFinished,
)

#: Wire name -> frame class (drives the JSONL linter and the decoder).
FRAME_TYPES: Dict[str, Type[TelemetryFrame]] = {
    cls.frame: cls for cls in _FRAME_CLASSES
}

_NUMBER = (int, float)


def _check_number(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, _NUMBER):
        raise ValueError(f"frame field {name!r} must be a number")
    return float(value)


def _check_str_dict(name: str, value: Any, number: bool) -> None:
    if not isinstance(value, dict):
        raise ValueError(f"frame field {name!r} must be an object")
    for k, v in value.items():
        if not isinstance(k, str):
            raise ValueError(f"frame field {name!r} keys must be strings")
        if isinstance(v, bool) or not isinstance(
            v, _NUMBER if number else int
        ):
            raise ValueError(f"frame field {name!r} values must be numbers")


def frame_from_dict(doc: Any) -> TelemetryFrame:
    """Decode one wire dict; raises ``ValueError`` on any drift.

    The receiver (the supervisor's parent side) treats a failure here as
    "count it malformed and drop it" — a worker on a different code
    version must never crash the campaign.
    """
    if not isinstance(doc, dict):
        raise ValueError("frame is not an object")
    cls = FRAME_TYPES.get(doc.get("frame"))
    if cls is None:
        raise ValueError(f"unknown frame name {doc.get('frame')!r}")
    expected = {f.name for f in fields(cls)}
    present = set(doc) - {"frame"}
    if present != expected:
        raise ValueError(
            f"{cls.frame} fields {sorted(present)} != {sorted(expected)}"
        )
    kwargs: Dict[str, Any] = {}
    for f in fields(cls):
        value = doc[f.name]
        if f.name in ("ts_s", "seconds"):
            kwargs[f.name] = _check_number(f.name, value)
        elif f.name in ("task", "phase"):
            if not isinstance(value, str):
                raise ValueError(f"frame field {f.name!r} must be a string")
            kwargs[f.name] = value
        elif f.name in ("pid", "interval", "instructions"):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"frame field {f.name!r} must be an int")
            kwargs[f.name] = value
        elif f.name == "ok":
            if not isinstance(value, bool):
                raise ValueError("frame field 'ok' must be a bool")
            kwargs[f.name] = value
        elif f.name in ("counters", "phase_counts"):
            _check_str_dict(f.name, value, number=False)
            kwargs[f.name] = dict(value)
        elif f.name == "phase_seconds":
            _check_str_dict(f.name, value, number=True)
            kwargs[f.name] = {k: float(v) for k, v in value.items()}
        else:  # pragma: no cover - new fields must be classified above
            raise ValueError(f"unclassified frame field {f.name!r}")
    return cls(**kwargs)
