"""Side-by-side configuration comparison tables."""

from __future__ import annotations

from typing import Sequence

from repro.sim.results import RunResult, energy_overhead, time_overhead
from repro.util.tables import format_table

__all__ = ["compare_runs"]


def compare_runs(
    baseline: RunResult, runs: Sequence[RunResult], title: str = "comparison"
) -> str:
    """Render a comparison of ``runs`` against the NoCkpt ``baseline``."""
    rows = []
    for run in runs:
        rows.append(
            [
                run.label,
                round(run.wall_ns / 1e3, 1),
                round(100 * time_overhead(run, baseline), 2),
                round(100 * energy_overhead(run, baseline), 2),
                run.checkpoint_count,
                run.total_checkpoint_bytes,
                run.recovery_count,
                run.omissions,
            ]
        )
    return format_table(
        [
            "config",
            "wall us",
            "time ovh %",
            "energy ovh %",
            "ckpts",
            "ckpt bytes",
            "recoveries",
            "omissions",
        ],
        rows,
        title=title,
    )
