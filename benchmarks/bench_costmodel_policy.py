"""Ablation: cost-model slice selection vs the greedy length threshold.

§III-A sketches a probabilistic/cost-model alternative to the greedy
threshold used in the evaluation: embed a Slice only when recomputing
along it is estimated cheaper than restoring the value from the in-memory
log.  Under the default 22 nm constants the energy break-even sits near
~140 slice instructions, so the cost-model policy behaves like a *very
generous* threshold — it recovers more checkpoint data than threshold-10
but pays more recomputation on recovery.
"""

from _bench_lib import BENCH_REPS, BENCH_SCALE, run_once

from repro.arch.config import MachineConfig
from repro.compiler.policy import CostModelPolicy, ThresholdPolicy
from repro.errors.injection import UniformErrors
from repro.sim.simulator import SimulationOptions, Simulator
from repro.util.tables import format_table
from repro.workloads.registry import get_workload

POLICIES = (
    ("threshold-10", ThresholdPolicy(10)),
    ("threshold-50", ThresholdPolicy(50)),
    ("cost-model", CostModelPolicy()),
)


def sweep():
    spec = get_workload("lu")  # long slice tail: policies diverge most
    cfg = MachineConfig(num_cores=8)
    programs = spec.build_programs(8, region_scale=BENCH_SCALE, reps=BENCH_REPS)
    sim = Simulator(programs, cfg)
    base = sim.run_baseline()
    prof = base.baseline_profile()
    ck = sim.run(
        SimulationOptions(label="Ckpt", scheme="global", baseline=prof)
    )
    rows = []
    data = {}
    for name, policy in POLICIES:
        re = sim.run(
            SimulationOptions(
                label=name,
                scheme="global",
                acr=True,
                slice_policy=policy,
                baseline=prof,
                errors=UniformErrors(1),
            )
        )
        red = 1 - re.total_checkpoint_bytes / ck.total_checkpoint_bytes
        rec = re.recoveries[0]
        data[name] = {
            "reduction": red,
            "recompute_instructions": rec.recompute_instructions,
            "recompute_ns": rec.recompute_ns,
        }
        rows.append(
            [
                name,
                round(100 * red, 2),
                rec.recomputed_values,
                rec.recompute_instructions,
                round(rec.recompute_ns, 1),
            ]
        )
    table = format_table(
        ["policy", "size red %", "recomputed", "rcmp instrs", "rcmp ns"],
        rows,
        title="Ablation: slice-selection policy (lu, 1 error)",
    )
    return table, data


def test_costmodel_policy(benchmark, emit):
    table, data = run_once(benchmark, sweep)
    emit("ablation_costmodel_policy", table)
    # More permissive policies omit more...
    assert (
        data["threshold-10"]["reduction"]
        < data["threshold-50"]["reduction"]
        <= data["cost-model"]["reduction"] + 1e-9
    )
    # ...but pay more recomputation work on recovery.
    assert (
        data["threshold-10"]["recompute_instructions"]
        < data["cost-model"]["recompute_instructions"]
    )
