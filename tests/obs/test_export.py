"""Tests for the JSONL and Chrome trace_event exporters and linters."""

import json

import pytest

from repro.obs.events import (
    AddrMapHit,
    AddrMapInsert,
    CheckpointBegin,
    CheckpointEnd,
    IntervalBoundary,
    LogWrite,
    RecoveryBegin,
    RecoveryEnd,
    SliceRecompute,
)
from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.lint import lint_event_dict, lint_jsonl, main as lint_main


def golden_events():
    """A tiny but representative stream: one checkpoint, one recovery."""
    return [
        LogWrite(ts_ns=10.0, core=0, address=64, line=1, size_bytes=16,
                 taken=True),
        AddrMapInsert(ts_ns=12.0, core=0, address=64, operands=2),
        AddrMapHit(ts_ns=15.0, core=1, address=128),
        LogWrite(ts_ns=15.0, core=1, address=128, line=2, size_bytes=16,
                 taken=False),
        CheckpointBegin(ts_ns=20.0, core=-1, index=0),
        IntervalBoundary(ts_ns=20.0, core=-1, index=0),
        CheckpointEnd(ts_ns=25.0, core=-1, index=0, duration_ns=5.0,
                      logged_records=1, omitted_records=1, logged_bytes=16,
                      flushed_bytes=128),
        RecoveryBegin(ts_ns=30.0, core=0, error_index=0, safe_checkpoint=0),
        SliceRecompute(ts_ns=30.0, core=0, slice_id=7, ns=4.5),
        RecoveryEnd(ts_ns=40.0, core=0, error_index=0, duration_ns=10.0,
                    waste_ns=5.0, rollback_ns=3.0, recompute_ns=2.0),
    ]


class TestJsonl:
    def test_write_and_lint_clean(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = golden_events()
        assert write_jsonl(events, path) == len(events)
        count, errors = lint_jsonl(path)
        assert errors == []
        assert count == len(events)

    def test_lines_round_trip_as_event_dicts(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = golden_events()
        write_jsonl(events, path)
        docs = [json.loads(line) for line in path.read_text().splitlines()]
        assert docs == [ev.to_dict() for ev in events]

    @pytest.mark.parametrize("obj,fragment", [
        ([1, 2], "not a JSON object"),
        ({"name": "martian", "ts_ns": 0.0, "core": 0}, "unknown event name"),
        ({"name": "addrmap_hit", "ts_ns": 0.0, "core": 0}, "missing field"),
        ({"name": "addrmap_hit", "ts_ns": 0.0, "core": 0, "address": 1,
          "surprise": 2}, "unknown field"),
        ({"name": "addrmap_hit", "ts_ns": -1.0, "core": 0, "address": 1},
         "non-negative"),
        ({"name": "addrmap_hit", "ts_ns": 0.0, "core": -2, "address": 1},
         ">= -1"),
    ])
    def test_lint_event_dict_catches(self, obj, fragment):
        problems = lint_event_dict(obj)
        assert problems and any(fragment in p for p in problems)

    def test_lint_jsonl_flags_broken_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "addrmap_hit"\n\n{"name": "nope"}\n')
        count, errors = lint_jsonl(path)
        assert count == 1  # only the decodable line counts
        assert any("invalid JSON" in e for e in errors)
        assert any("blank line" in e for e in errors)
        assert any("unknown event name" in e for e in errors)

    def test_lint_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.jsonl"
        write_jsonl(golden_events(), good)
        assert lint_main([str(good)]) == 0
        assert "ok" in capsys.readouterr().out
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert lint_main([str(bad)]) == 1
        assert lint_main([]) == 2


class TestChromeTrace:
    def test_golden_document_is_valid(self):
        doc = chrome_trace(golden_events())
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ns"

    def test_span_counter_and_metadata_structure(self):
        doc = chrome_trace(golden_events(), process_name="test-proc")
        events = doc["traceEvents"]
        by_phase = {}
        for ev in events:
            by_phase.setdefault(ev["ph"], []).append(ev)
        # One checkpoint and one recovery span, opened and closed.
        assert {e["name"] for e in by_phase["B"]} == {
            "checkpoint 0", "recovery 0",
        }
        assert {e["name"] for e in by_phase["E"]} == {
            "checkpoint 0", "recovery 0",
        }
        # Counter tracks carry cumulative numeric series.
        counter_names = {e["name"] for e in by_phase["C"]}
        assert counter_names == {"log bytes", "addrmap"}
        last_log = [e for e in by_phase["C"] if e["name"] == "log bytes"][-1]
        assert last_log["args"] == {"taken": 16, "skipped": 16}
        # Slice recomputation is a complete event on the core's track.
        (x,) = by_phase["X"]
        assert x["name"] == "slice 7"
        assert x["tid"] == 1  # core 0 -> tid 1
        assert x["dur"] == pytest.approx(4.5 / 1e3)
        # Metadata names the process and every used thread track.
        meta_names = {(e["name"], e["args"]["name"]) for e in by_phase["M"]}
        assert ("process_name", "test-proc") in meta_names
        assert ("thread_name", "machine") in meta_names
        assert ("thread_name", "core 0") in meta_names

    def test_timestamps_are_microseconds(self):
        doc = chrome_trace(golden_events())
        begin = next(
            e for e in doc["traceEvents"]
            if e["ph"] == "B" and e["name"] == "checkpoint 0"
        )
        assert begin["ts"] == pytest.approx(20.0 / 1e3)

    def test_write_round_trips_through_json(self, tmp_path):
        path = write_chrome_trace(golden_events(), tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_empty_stream_is_still_valid(self):
        doc = chrome_trace([])
        assert validate_chrome_trace(doc) == []

    @pytest.mark.parametrize("doc,fragment", [
        ("nope", "traceEvents"),
        ({"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "ts": 0}]},
         "unknown phase"),
        ({"traceEvents": [{"ph": "B", "pid": 1, "ts": 0}]}, "missing name"),
        ({"traceEvents": [{"ph": "B", "name": "x", "pid": 1, "ts": -2}]},
         "non-negative"),
        ({"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "ts": 0}]},
         "dur"),
        ({"traceEvents": [{"ph": "C", "name": "x", "pid": 1, "ts": 0,
                           "args": {}}]}, "numeric args"),
        ({"traceEvents": [{"ph": "E", "name": "x", "pid": 1, "tid": 0,
                           "ts": 0}]}, "without matching B"),
        ({"traceEvents": [{"ph": "B", "name": "x", "pid": 1, "tid": 0,
                           "ts": 0}]}, "unclosed span"),
    ])
    def test_validator_catches_malformed_documents(self, doc, fragment):
        errors = validate_chrome_trace(doc)
        assert errors and any(fragment in e for e in errors)
