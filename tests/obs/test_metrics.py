"""Tests for counters, histograms, the registry and ObsReport."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    ObsReport,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)


class TestHistogram:
    def test_bucketing_with_overflow(self):
        h = Histogram("h", (1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 100.0, 1e6):
            h.observe(v)
        # counts[i] holds values <= buckets[i]; last slot is overflow.
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.min == 0.5
        assert h.max == 1e6
        assert h.mean == pytest.approx((0.5 + 1 + 5 + 100 + 1e6) / 5)

    def test_empty_histogram(self):
        h = Histogram("h", (1.0,))
        assert h.count == 0
        assert h.mean == 0.0
        assert h.min is None and h.max is None

    def test_bad_edges_rejected(self):
        for edges in ((), (2.0, 1.0), (1.0, 1.0)):
            with pytest.raises(ValueError):
                Histogram("h", edges)


class TestMetricsRegistry:
    def test_auto_creation_and_reuse(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_default_buckets_apply_by_name(self):
        reg = MetricsRegistry()
        h = reg.histogram("recovery.slice_length")
        assert h.buckets == DEFAULT_BUCKETS["recovery.slice_length"]

    def test_interval_snapshots_record_deltas(self):
        reg = MetricsRegistry()
        reg.counter("log.writes_taken").inc(10)
        snap0 = reg.snapshot_interval(0)
        reg.counter("log.writes_taken").inc(3)
        reg.counter("log.writes_skipped").inc(2)
        snap1 = reg.snapshot_interval(1)
        assert snap0 == {"index": 0, "log.writes_taken": 10}
        assert snap1 == {
            "index": 1, "log.writes_taken": 3, "log.writes_skipped": 2,
        }
        # Zero deltas stay out of the snapshot.
        snap2 = reg.snapshot_interval(2)
        assert snap2 == {"index": 2}
        assert reg.intervals == [snap0, snap1, snap2]

    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(7)
        reg.histogram("ckpt.logged_bytes").observe(1024)
        reg.histogram("custom", buckets=(1.0, 2.0)).observe(5.0)
        reg.snapshot_interval(0)
        back = MetricsRegistry.from_dict(reg.to_dict())
        assert back.to_dict() == reg.to_dict()

    @pytest.mark.parametrize("mutate", [
        lambda d: d.update(extra=1),
        lambda d: d.pop("counters"),
        lambda d: d["counters"].update(bad="x"),
        lambda d: d.__setitem__("counters", [1]),
        lambda d: d.__setitem__("histograms", "nope"),
        lambda d: d["histograms"]["h"].pop("counts"),
        lambda d: d["histograms"]["h"].__setitem__("counts", [1]),
        lambda d: d["histograms"]["h"].__setitem__("count", 99),
        lambda d: d.__setitem__("intervals", {"not": "a list"}),
        lambda d: d.__setitem__("intervals", [{"no_index": 1}]),
    ])
    def test_corrupt_payloads_raise(self, mutate):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        reg.snapshot_interval(0)
        doc = reg.to_dict()
        mutate(doc)
        with pytest.raises((ValueError, TypeError, KeyError)):
            MetricsRegistry.from_dict(doc)

    def test_summary_table_renders(self):
        reg = MetricsRegistry()
        assert reg.summary_table() == "no metrics recorded"
        reg.counter("a").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        reg.snapshot_interval(0)
        table = reg.summary_table()
        assert "counters" in table
        assert "histograms" in table
        assert "interval snapshots: 1" in table


class TestObsReport:
    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        report = ObsReport(metrics=reg, events_captured=10, events_dropped=2)
        back = ObsReport.from_dict(report.to_dict())
        assert back.to_dict() == report.to_dict()

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("metrics"),
        lambda d: d.pop("events_captured"),
        lambda d: d.update(surprise=1),
        lambda d: d.__setitem__("events_captured", -1),
        lambda d: d.__setitem__("events_dropped", "many"),
        lambda d: d.__setitem__("events_dropped", True),
        lambda d: d.__setitem__("metrics", [1, 2]),
    ])
    def test_corrupt_payloads_raise(self, mutate):
        doc = ObsReport().to_dict()
        mutate(doc)
        with pytest.raises((ValueError, TypeError, KeyError)):
            ObsReport.from_dict(doc)

    def test_summary_ends_with_capture_line(self):
        report = ObsReport(events_captured=5, events_dropped=1)
        assert report.summary_table().endswith(
            "events: 5 captured / 1 dropped"
        )
