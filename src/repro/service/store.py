"""The sharded, replicated result store (ReStore-style, DESIGN §3.7).

:class:`ReplicatedStore` wraps the on-disk
:class:`~repro.experiments.cache.ResultCache` with an in-memory tier:
the content-addressed keyspace is partitioned across N shard *processes*
by key hash, and every entry is replicated to R shards — the hash-primary
plus its ring successors — exactly ReStore's in-memory replicated
storage for rapid recovery.  The durability ladder:

1. **disk first** — every write lands in the ResultCache before any
   shard sees it, so shard loss can never lose a completed result;
2. **shards serve reads** — a lookup asks the key's owner shards before
   touching disk (the common path stays cheap, ACR's own thesis);
3. **heartbeat death detection** — :meth:`heartbeat` pings every shard;
   a dead or unresponsive one is respawned and *re-replicated*: every
   indexed key the dead shard owned is copied back from a surviving
   replica (or disk), restoring full R-way redundancy;
4. **circuit breaker** — losing a majority of shards in one sweep, or
   ``failure_threshold`` consecutive recovery failures, trips the store
   into *degraded* mode (the :class:`~repro.resilience.policy` pattern):
   shards are abandoned and every operation serves directly from the
   disk cache, serially — slower, never wrong.

The store quacks like a ``ResultCache`` (``load``/``store``/
``load_payload``/``store_payload``/``quarantine``/``lock_path``/
``journal_path``/``telemetry_path``), so an
:class:`~repro.experiments.runner.ExperimentRunner` accepts it via its
``cache=`` parameter unchanged.  All shard RPC is serialised under one
lock — the daemon's connection handler threads share a single store.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

from repro.experiments.cache import KIND_RUN, ResultCache
from repro.sim.results import RunResult
from repro.util.validation import check_positive

__all__ = ["ReplicatedStore"]


def _shard_loop(conn) -> None:
    """Child-process body: an in-memory slice of the keyspace.

    Requests are tagged tuples; each gets exactly one reply, so the
    parent can treat any pipe error or timeout as shard death.  A
    ``None`` sentinel (or a closed pipe) ends the loop.
    """
    entries: Dict[str, Any] = {}
    kinds: Dict[str, str] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        try:
            op = msg[0]
            if op == "put":
                _, key, kind, doc = msg
                entries[key] = doc
                kinds[key] = kind
                reply: Any = ("ok", True)
            elif op == "get":
                _, key, kind = msg
                if key in entries and kinds.get(key) == kind:
                    reply = ("ok", entries[key])
                else:
                    reply = ("ok", None)
            elif op == "delete":
                _, key = msg
                reply = ("ok", entries.pop(key, None) is not None)
                kinds.pop(key, None)
            elif op == "keys":
                reply = ("ok", sorted(entries))
            elif op == "ping":
                reply = ("ok", len(entries))
            else:
                reply = ("err", f"unknown shard op {op!r}")
        except Exception as exc:  # report, never die — parity with workers
            reply = ("err", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break


class _Shard:
    """Parent-side handle of one shard process (the supervisor's
    ``_Worker`` pattern: private pipe, daemonised child)."""

    def __init__(self, ctx, sid: int) -> None:
        self.sid = sid
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_shard_loop,
            args=(child,),
            daemon=True,
            name=f"acr-shard-{sid}",
        )
        self.process.start()
        child.close()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError, AttributeError):
            pass
        self.process.join(timeout=1.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def stop(self) -> None:
        """Graceful shutdown: sentinel, short join, then kill."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:
                pass


class ReplicatedStore:
    """N-shard, R-replica in-memory tier over a disk ``ResultCache``."""

    def __init__(
        self,
        cache: ResultCache,
        shards: int = 4,
        replicas: int = 2,
        rpc_timeout_s: float = 5.0,
        failure_threshold: int = 3,
        metrics: Optional[Any] = None,
    ) -> None:
        check_positive("shards", shards)
        check_positive("replicas", replicas)
        if replicas > shards:
            raise ValueError(
                f"replicas ({replicas}) cannot exceed shards ({shards})"
            )
        self.cache = cache
        self.num_shards = shards
        self.replicas = replicas
        self.rpc_timeout_s = rpc_timeout_s
        self.failure_threshold = failure_threshold
        self.metrics = metrics
        #: Degraded (circuit open): all shards abandoned, disk serves.
        self.degraded = False
        # Lifetime accounting (status surface + tests).
        self.shard_deaths = 0
        self.rereplicated = 0
        self.disk_fallbacks = 0
        self._consecutive_failures = 0
        #: Every key this store has written or read-repaired, with its
        #: payload kind — the re-replication worklist after a shard dies.
        self._index: Dict[str, str] = {}
        self._lock = threading.RLock()
        self._ctx = multiprocessing.get_context()
        self._shards: List[Optional[_Shard]] = [
            _Shard(self._ctx, sid) for sid in range(shards)
        ]
        self._next_sid = shards

    # ------------------------------------------------------------ placement --
    def owners(self, key: str) -> List[int]:
        """The shard ids replicating ``key``: hash-primary + successors
        on the ring (ReStore's buddy placement)."""
        primary = int(key[:8], 16) % self.num_shards
        return [
            (primary + i) % self.num_shards for i in range(self.replicas)
        ]

    # ------------------------------------------------------------- shard rpc --
    def _rpc(self, sid: int, msg: Any) -> Any:
        """One request/reply on shard ``sid``; returns ``None`` after
        marking the shard dead on any pipe failure or timeout (a reply
        value is always a tagged tuple, so ``None`` is unambiguous)."""
        shard = self._shards[sid]
        if shard is None:
            return None
        try:
            shard.conn.send(msg)
            if not shard.conn.poll(self.rpc_timeout_s):
                raise TimeoutError(f"shard {sid} rpc timeout")
            tag, value = shard.conn.recv()
        except (BrokenPipeError, EOFError, OSError, TimeoutError,
                ValueError):
            self._mark_dead(sid)
            return None
        if tag != "ok":
            return None
        return ("ok", value)

    def _mark_dead(self, sid: int) -> None:
        shard = self._shards[sid]
        if shard is None:
            return
        self._shards[sid] = None
        self.shard_deaths += 1
        self._count("store.shard_deaths")
        shard.kill()

    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    # ------------------------------------------------------------ resilience --
    def heartbeat(self) -> None:
        """Ping every shard; dead ones are respawned and re-replicated.

        The daemon calls this from its accept loop; tests call it
        directly after SIGKILLing shards.  A sweep that finds a majority
        of shards dead — or that cannot recover ``failure_threshold``
        times in a row — trips the circuit breaker instead of recovering.
        """
        with self._lock:
            if self.degraded:
                return
            dead = []
            for sid, shard in enumerate(self._shards):
                if shard is None or not shard.alive():
                    if shard is not None:
                        self._mark_dead(sid)
                    dead.append(sid)
                elif self._rpc(sid, ("ping",)) is None:
                    dead.append(sid)
            if not dead:
                self._consecutive_failures = 0
                return
            if len(dead) > self.num_shards // 2:
                # Majority loss in one sweep: recovery would rebuild most
                # of the tier from disk anyway — degrade instead.
                self._degrade()
                return
            try:
                for sid in dead:
                    self._recover(sid)
                self._consecutive_failures = 0
            except OSError:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._degrade()

    def _recover(self, sid: int) -> None:
        """Respawn shard ``sid`` and restore every replica it owned.

        Surviving copies are preferred (an in-memory copy is the cheap
        path); the disk cache backstops keys whose other replicas died
        too.  On return every indexed key owned by ``sid`` is back at
        full R-way redundancy.
        """
        self._shards[sid] = _Shard(self._ctx, self._next_sid)
        self._next_sid += 1
        restored = 0
        for key, kind in list(self._index.items()):
            owners = self.owners(key)
            if sid not in owners:
                continue
            doc = None
            for other in owners:
                if other == sid or self._shards[other] is None:
                    continue
                reply = self._rpc(other, ("get", key, kind))
                if reply is not None and reply[1] is not None:
                    doc = reply[1]
                    break
            if doc is None:
                doc = self.cache.load_payload(key, kind)
            if doc is None:
                # Quarantined on disk and lost in memory: drop the index
                # entry — there is nothing left to replicate.
                self._index.pop(key, None)
                continue
            if self._rpc(sid, ("put", key, kind, doc)) is not None:
                restored += 1
        self.rereplicated += restored
        self._count("store.rereplicated", restored)

    def _degrade(self) -> None:
        """Open the circuit: abandon every shard, serve from disk."""
        if self.degraded:
            return
        self.degraded = True
        self._count("store.degraded")
        for sid in range(self.num_shards):
            shard = self._shards[sid]
            self._shards[sid] = None
            if shard is not None:
                shard.stop()

    # -------------------------------------------------------- cache protocol --
    # The ExperimentRunner-facing surface: identical signatures to
    # ResultCache, so the store drops in via the runner's ``cache=``.
    @property
    def root(self) -> Path:
        return self.cache.root

    @property
    def quarantined(self) -> int:
        return self.cache.quarantined

    def path_for(self, key: str) -> Path:
        return self.cache.path_for(key)

    def lock_path(self, key: str) -> Path:
        return self.cache.lock_path(key)

    def journal_path(self) -> Path:
        return self.cache.journal_path()

    def telemetry_path(self) -> Path:
        return self.cache.telemetry_path()

    def load(self, key: str) -> Optional[RunResult]:
        payload = self.load_payload(key, KIND_RUN)
        if payload is None:
            return None
        try:
            return RunResult.from_dict(payload)
        except (ValueError, TypeError, KeyError):
            self.quarantine(key)
            return None

    def store(self, key: str, result: RunResult) -> Path:
        return self.store_payload(key, result.to_dict(), KIND_RUN)

    def store_payload(self, key: str, result: Any, kind: str) -> Path:
        """Disk first (durability), then replicate to the owner shards
        (the fast tier).  A shard that fails mid-put is simply marked
        dead — the next heartbeat re-replicates."""
        path = self.cache.store_payload(key, result, kind)
        with self._lock:
            self._index[key] = kind
            if not self.degraded:
                doc = _json_round_trip(result)
                for sid in self.owners(key):
                    self._rpc(sid, ("put", key, kind, doc))
        return path

    def load_payload(self, key: str, kind: str) -> Optional[Any]:
        """Owner shards first, disk fallback with read-repair."""
        with self._lock:
            if not self.degraded:
                for sid in self.owners(key):
                    reply = self._rpc(sid, ("get", key, kind))
                    if reply is not None and reply[1] is not None:
                        self._count("store.hits")
                        return reply[1]
            payload = self.cache.load_payload(key, kind)
            if payload is None:
                self._count("store.misses")
                return None
            # Read repair: a disk hit the shards missed (pre-daemon
            # warm cache, or a lossy recovery) is promoted back into
            # the fast tier.
            self.disk_fallbacks += 1
            self._count("store.disk_fallbacks")
            self._index[key] = kind
            if not self.degraded:
                for sid in self.owners(key):
                    self._rpc(sid, ("put", key, kind, payload))
            return payload

    def quarantine(self, key: str) -> None:
        """Drop a corrupt entry from disk *and* every shard replica."""
        self.cache.quarantine(key)
        with self._lock:
            self._index.pop(key, None)
            if not self.degraded:
                for sid in self.owners(key):
                    self._rpc(sid, ("delete", key))

    def __contains__(self, key: str) -> bool:
        return self.load_payload_probe(key)

    def load_payload_probe(self, key: str) -> bool:
        """Whether any tier holds ``key`` (no payload transfer)."""
        with self._lock:
            if key in self._index:
                return True
        return self.cache.path_for(key).exists()

    def describe(self) -> Dict[str, Any]:
        doc = self.cache.describe()
        doc.update(self.status())
        return doc

    # ----------------------------------------------------------------- intro --
    def shard_pids(self) -> List[Optional[int]]:
        """Live shard pids (``None`` for a currently-dead slot)."""
        with self._lock:
            return [
                s.pid if s is not None and s.alive() else None
                for s in self._shards
            ]

    def alive_count(self) -> int:
        with self._lock:
            return sum(
                1 for s in self._shards if s is not None and s.alive()
            )

    def replica_count(self, key: str) -> int:
        """How many live shards currently hold ``key`` (the redundancy
        assertion of the chaos suite)."""
        kind = self._index.get(key, KIND_RUN)
        count = 0
        with self._lock:
            for sid in range(self.num_shards):
                if self._shards[sid] is None:
                    continue
                reply = self._rpc(sid, ("get", key, kind))
                if reply is not None and reply[1] is not None:
                    count += 1
        return count

    def indexed_keys(self) -> Set[str]:
        with self._lock:
            return set(self._index)

    def status(self) -> Dict[str, Any]:
        """The shard-tier health document (the daemon's status surface)."""
        with self._lock:
            return {
                "shards": self.num_shards,
                "alive": self.alive_count(),
                "replicas": self.replicas,
                "pids": self.shard_pids(),
                "degraded": self.degraded,
                "shard_deaths": self.shard_deaths,
                "rereplicated": self.rereplicated,
                "disk_fallbacks": self.disk_fallbacks,
                "entries": len(self._index),
            }

    def close(self) -> None:
        """Stop every shard (graceful, then forceful)."""
        with self._lock:
            for sid in range(self.num_shards):
                shard = self._shards[sid]
                self._shards[sid] = None
                if shard is not None:
                    shard.stop()


def _json_round_trip(result: Any) -> Any:
    """The payload exactly as a future disk read would return it.

    Shards must serve byte-for-byte what disk would (JSON round-tripping
    maps tuples to lists etc.), so the replicated doc is the result of
    one encode/decode round trip rather than the live Python object.
    """
    return json.loads(json.dumps(result))
