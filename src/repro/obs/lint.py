"""JSONL schema linter (library + ``python -m repro.obs.lint``).

One record per line, each a JSON object of one of three kinds, told
apart by their discriminator key:

* trace events — ``"name"`` from :data:`repro.obs.events.EVENT_TYPES`;
* telemetry frames — ``"frame"`` from
  :data:`repro.obs.telemetry.frames.FRAME_TYPES`;
* telemetry snapshots — ``"kind": "telemetry-snapshot"`` with exactly
  :data:`repro.obs.telemetry.snapshots.SNAPSHOT_FIELDS` plus the
  version stamp.

The CI smoke steps run this over freshly exported traces and telemetry
streams so the JSONL contracts cannot drift silently from their
dataclasses — the checks are derived from the dataclass fields (or the
published field tuple), never hand-listed.
"""

from __future__ import annotations

import json
import sys
from dataclasses import fields
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Type, Union

from repro.obs.events import EVENT_TYPES, TraceEvent
from repro.obs.telemetry.frames import frame_from_dict
from repro.obs.telemetry.snapshots import (
    SNAPSHOT_FIELDS,
    SNAPSHOT_KIND,
    TELEMETRY_SCHEMA_VERSION,
)

__all__ = [
    "lint_event_dict",
    "lint_frame_dict",
    "lint_snapshot_dict",
    "lint_record",
    "lint_jsonl",
    "main",
]

#: Per-event required keys (the wire name plus every dataclass field).
_SCHEMAS: Dict[str, Tuple[Type[TraceEvent], frozenset]] = {
    name: (cls, frozenset(f.name for f in fields(cls)))
    for name, cls in EVENT_TYPES.items()
}


def lint_event_dict(obj: object, where: str = "event") -> List[str]:
    """Problems with one decoded JSONL event object (empty == valid)."""
    if not isinstance(obj, dict):
        return [f"{where}: not a JSON object"]
    name = obj.get("name")
    if name not in _SCHEMAS:
        return [f"{where}: unknown event name {name!r}"]
    _, required = _SCHEMAS[name]
    errors: List[str] = []
    present = set(obj) - {"name"}
    for missing in sorted(required - present):
        errors.append(f"{where}: {name} missing field {missing!r}")
    for extra in sorted(present - required):
        errors.append(f"{where}: {name} has unknown field {extra!r}")
    ts = obj.get("ts_ns")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        errors.append(f"{where}: ts_ns must be a non-negative number")
    core = obj.get("core")
    if not isinstance(core, int) or isinstance(core, bool) or core < -1:
        errors.append(f"{where}: core must be an int >= -1")
    return errors


def lint_frame_dict(obj: object, where: str = "frame") -> List[str]:
    """Problems with one telemetry-frame object (empty == valid).

    Delegates to the strict receiver-side decoder so the linter and the
    campaign aggregator can never disagree about what a valid frame is.
    """
    try:
        frame_from_dict(obj)
    except ValueError as exc:
        return [f"{where}: {exc}"]
    return []


def lint_snapshot_dict(obj: object, where: str = "snapshot") -> List[str]:
    """Problems with one telemetry-snapshot object (empty == valid)."""
    if not isinstance(obj, dict):
        return [f"{where}: not a JSON object"]
    errors: List[str] = []
    version = obj.get("v")
    if version != TELEMETRY_SCHEMA_VERSION:
        errors.append(
            f"{where}: snapshot version {version!r} != "
            f"{TELEMETRY_SCHEMA_VERSION}"
        )
    required = set(SNAPSHOT_FIELDS)
    present = set(obj) - {"v", "kind"}
    for missing in sorted(required - present):
        errors.append(f"{where}: snapshot missing field {missing!r}")
    for extra in sorted(present - required):
        errors.append(f"{where}: snapshot has unknown field {extra!r}")
    return errors


def lint_record(obj: object, where: str = "record") -> List[str]:
    """Dispatch one decoded JSONL object to its kind's linter."""
    if isinstance(obj, dict):
        if "frame" in obj:
            return lint_frame_dict(obj, where)
        if obj.get("kind") == SNAPSHOT_KIND:
            return lint_snapshot_dict(obj, where)
    return lint_event_dict(obj, where)


def lint_jsonl(path: Union[str, Path]) -> Tuple[int, List[str]]:
    """Lint a JSONL file (events, frames and/or snapshots may be mixed);
    returns ``(record_count, problems)``."""
    path = Path(path)
    errors: List[str] = []
    count = 0
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        return 0, [f"{path}: unreadable: {exc}"]
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            errors.append(f"{path}:{lineno}: blank line")
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{path}:{lineno}: invalid JSON: {exc.msg}")
            continue
        count += 1
        errors.extend(lint_record(obj, where=f"{path}:{lineno}"))
    return count, errors


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: lint each given JSONL file; exit 1 on any problem."""
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.obs.lint RECORDS.jsonl [...]",
              file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        count, errors = lint_jsonl(path)
        for err in errors:
            print(err, file=sys.stderr)
        if errors:
            failed = True
        else:
            print(f"{path}: ok ({count} records)")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    sys.exit(main())
