"""Supervisor telemetry streaming: frames over worker pipes, chaos.

Task functions are module-level (they cross the worker pipe by
reference).  Emission inside them is ambient — the worker loop installs
the pipe sink around each execution — so the same functions prove both
directions: frames stream when a :class:`CampaignTelemetry` is attached,
and the very same code runs silent (``telemetry_active() is False``)
when it is not.
"""

import os
import signal

import pytest

from repro.obs.telemetry.aggregate import CampaignTelemetry
from repro.obs.telemetry.emit import emit, telemetry_active
from repro.obs.telemetry.frames import TaskHeartbeat
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.supervisor import SupervisedTask, Supervisor

chaos = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"),
    reason="chaos tests need SIGKILL",
)


# ------------------------------------------------------------- task functions
def _beating_task(n):
    """Emit a few heartbeats, report whether telemetry was active."""
    for i in range(3):
        emit(TaskHeartbeat, interval=i, instructions=(i + 1) * 100)
    return (telemetry_active(), n * n)


def _suicide_once_then_beat(payload):
    marker, value = payload
    emit(TaskHeartbeat, interval=0, instructions=100)
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("killed\n")
        os.kill(os.getpid(), signal.SIGKILL)
    emit(TaskHeartbeat, interval=1, instructions=200)
    return value


def _tasks(fn, payloads):
    return [
        SupervisedTask(key=f"task-{i:02x}", fn=fn, payload=p, label=f"t{i}")
        for i, p in enumerate(payloads)
    ]


def _fast_policy(**kw):
    kw.setdefault("max_retries", 2)
    kw.setdefault("backoff_base_s", 0.01)
    kw.setdefault("timeout_s", 30.0)
    return ResiliencePolicy(**kw)


def test_frames_stream_through_worker_pipes():
    telemetry = CampaignTelemetry()
    with Supervisor(jobs=2, telemetry=telemetry) as sup:
        results = sup.run(_tasks(_beating_task, [2, 3, 4]))
    # Every task saw an installed sink inside the worker process ...
    assert all(active for active, _ in results.values())
    assert sorted(sq for _, sq in results.values()) == [4, 9, 16]
    # ... and its lifecycle + heartbeats reached the parent aggregator.
    assert telemetry.tasks_started == 3
    assert telemetry.tasks_finished == 3
    assert telemetry.malformed == 0
    assert telemetry.active == {}
    # 3 tasks x (started + 3 heartbeats + finished), phase frames aside.
    assert telemetry.frames >= 15
    assert telemetry.counters["instructions"] == 3 * 300
    assert telemetry.metrics.counter("telemetry.heartbeats").value == 9
    # Pool gauges were reported by the supervisor sweep.
    assert telemetry.workers == 2


def test_no_telemetry_means_no_sink_in_workers():
    with Supervisor(jobs=2) as sup:
        results = sup.run(_tasks(_beating_task, [5]))
    [(active, sq)] = results.values()
    assert active is False  # emit() was a no-op inside the worker
    assert sq == 25


def test_results_identical_with_and_without_telemetry():
    with Supervisor(jobs=2) as sup:
        plain = sup.run(_tasks(_beating_task, [2, 3]))
    with Supervisor(jobs=2, telemetry=CampaignTelemetry()) as sup:
        streamed = sup.run(_tasks(_beating_task, [2, 3]))
    assert {k: v[1] for k, v in plain.items()} == {
        k: v[1] for k, v in streamed.items()
    }


@chaos
def test_sigkilled_worker_mid_stream_campaign_survives(tmp_path):
    telemetry = CampaignTelemetry()
    marker = str(tmp_path / "killed.marker")
    with Supervisor(
        policy=_fast_policy(), jobs=2, telemetry=telemetry
    ) as sup:
        results = sup.run(_tasks(_suicide_once_then_beat, [(marker, 99)]))
    assert results["task-00"] == 99
    # The killed attempt streamed its started frame (and maybe a beat)
    # before dying; the retry completed the lifecycle.  No stale entry
    # may survive and nothing may read as malformed.
    assert telemetry.tasks_started >= 2
    assert telemetry.tasks_finished == 1
    assert telemetry.malformed == 0
    assert telemetry.active == {}


def test_degraded_serial_path_still_streams_frames():
    telemetry = CampaignTelemetry()
    sup = Supervisor(jobs=2, telemetry=telemetry)
    sup._degrade()  # trip the breaker directly: pure-serial execution
    with sup:
        results = sup.run(_tasks(_beating_task, [6]))
    [(active, sq)] = results.values()
    assert active is True  # the serial scope installs the sink in-process
    assert sq == 36
    assert telemetry.tasks_started == 1
    assert telemetry.tasks_finished == 1
    assert telemetry.counters["instructions"] == 300
